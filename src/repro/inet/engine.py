"""Compiled Gao–Rexford propagation engine for sweep-style experiments.

Every experiment the paper showcases (§2: LIFEGUARD-style poisoning,
PoiRoot-style selective announcement, anycast prepend engineering) is a
*sweep*: evaluate dozens-to-thousands of announcement configurations over
the same AS graph.  The reference :func:`repro.inet.routing.propagate`
re-derives everything per call: it materializes a full AS-path tuple per
reached AS and pays per-call set copies on every adjacency access.

:class:`PropagationEngine` instead **compiles** the :class:`ASGraph` once
into int-indexed, pre-sorted CSR-style adjacency arrays (invalidated by
the graph's version counter) and converges over a **parent-pointer route
table**: per AS an ``(kind, via, root-spec, pathlen)`` record.  AS paths
are reconstructed lazily on demand, so no path tuples are copied during
convergence.

The trick that makes the route table sufficient: in each propagation
phase, every AS on a candidate's path is already *finalized* (it either
originated the route or was popped from the phase heap earlier), so the
reference's ``neighbor not in path`` loop check decomposes exactly into

* "neighbor already holds a route" — one bitmap read, and
* "neighbor's ASN appears in the origin's export path" (prepends and
  poison sentinels) — one frozenset membership test.

Neither needs the path.  Index order is ASN order, so integer heap
entries tie-break identically to the reference's ASN/path comparisons —
the engine is route-for-route identical to ``propagate()`` (property
tests in ``tests/test_inet_engine.py`` enforce this).

On top sit an LRU result cache keyed by ``(graph version, canonical
announcement)`` and :meth:`PropagationEngine.propagate_many`, which fans
a sweep out over a ``multiprocessing`` pool, shipping the compiled
topology once per worker and compact route tables back.
"""

from __future__ import annotations

import os
from array import array
from collections import OrderedDict
from heapq import heappop, heappush
from time import perf_counter
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..telemetry.metrics import MetricsRegistry
from .routing import Announcement, ASRoute, OriginSpec, RouteKind, RoutingOutcome
from .topology import ASGraph, TopologyError

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..secroute.policy import CompiledSecurity

__all__ = [
    "CompiledTopology",
    "CompiledOutcome",
    "OutcomeCache",
    "PropagationEngine",
    "canonical_key",
]

_ORIGIN = int(RouteKind.ORIGIN)
_CUSTOMER = int(RouteKind.CUSTOMER)
_PEER = int(RouteKind.PEER)
_PROVIDER = int(RouteKind.PROVIDER)

# Empty tie-break rank for non-origin heap entries.  Origin entries carry
# their export path here, mirroring the reference heap's path comparison
# when (pathlen, via, target) tie between two specs of one origin.
_NO_RANK: Tuple[int, ...] = ()


class CompiledTopology:
    """An :class:`ASGraph` frozen into int-indexed adjacency arrays.

    ASes are renumbered ``0..n-1`` in ascending-ASN order (so comparing
    indices is comparing ASNs), and each relation is stored CSR-style as
    one flat neighbor array plus per-node offsets.  Per-node tuples are
    derived once for the hot loops; the CSR arrays are also the compact
    pickle form shipped to pool workers.
    """

    __slots__ = (
        "version", "n", "asns", "idx",
        "prov_off", "prov_adj", "cust_off", "cust_adj", "peer_off", "peer_adj",
        "providers", "customers", "peers", "peer_nodes", "cust_nodes",
    )

    def __init__(self, graph: ASGraph) -> None:
        self.version = graph.version
        asns = sorted(graph.asns())
        self.asns: List[int] = asns
        self.n = len(asns)
        idx = {asn: i for i, asn in enumerate(asns)}
        self.idx: Dict[int, int] = idx

        def build(sorted_of) -> Tuple[array, array]:
            adj = array("l")
            off = array("l", [0])
            for asn in asns:
                # sorted-by-ASN neighbors map to sorted indices (monotone).
                adj.extend(idx[nbr] for nbr in sorted_of(asn))
                off.append(len(adj))
            return off, adj

        self.prov_off, self.prov_adj = build(graph.sorted_providers)
        self.cust_off, self.cust_adj = build(graph.sorted_customers)
        self.peer_off, self.peer_adj = build(graph.sorted_peers)
        self._derive_views()

    def _derive_views(self) -> None:
        def views(off: array, adj: array) -> List[Tuple[int, ...]]:
            lst = adj.tolist()
            return [tuple(lst[off[i]:off[i + 1]]) for i in range(self.n)]

        self.providers = views(self.prov_off, self.prov_adj)
        self.customers = views(self.cust_off, self.cust_adj)
        self.peers = views(self.peer_off, self.peer_adj)
        # Ascending index lists of nodes that have peer / customer edges,
        # so phases 2 and 3 skip the (usually large) pure-stub remainder.
        self.peer_nodes = tuple(i for i, p in enumerate(self.peers) if p)
        self.cust_nodes = tuple(i for i, c in enumerate(self.customers) if c)

    # -- pickling (pool workers get the CSR arrays, not the tuple views) ------

    def __getstate__(self):
        return (
            self.version, self.asns,
            self.prov_off, self.prov_adj,
            self.cust_off, self.cust_adj,
            self.peer_off, self.peer_adj,
        )

    def __setstate__(self, state):
        (self.version, self.asns,
         self.prov_off, self.prov_adj,
         self.cust_off, self.cust_adj,
         self.peer_off, self.peer_adj) = state
        self.n = len(self.asns)
        self.idx = {asn: i for i, asn in enumerate(self.asns)}
        self._derive_views()


def canonical_key(announcement: Announcement) -> Tuple:
    """Hashable canonical form of an announcement for result caching.

    Spec order is preserved (it is semantically significant when one
    origin carries several specs); ``announce_to`` is normalized to a
    sorted unique tuple since only membership matters.  The prefix is
    deliberately *not* part of the key: propagation is prefix-agnostic,
    so announcements of different prefixes with identical steering share
    one converged outcome.  (Security-filtered runs key the prefix via
    the policy fingerprint instead — verdicts depend on it.)
    """
    return tuple(
        (
            spec.asn,
            spec.prepend,
            tuple(spec.poison),
            tuple(spec.path_suffix),
            None if spec.announce_to is None
            else tuple(sorted(set(spec.announce_to))),
        )
        for spec in announcement.origins
    )


def _compile_specs(
    compiled: CompiledTopology, announcement: Announcement
) -> Tuple[Tuple[int, Tuple[int, ...], frozenset, Optional[frozenset]], ...]:
    """Per-spec (origin_index, export_path, export_set, announce_to_set)."""
    specs = []
    for spec in announcement.origins:
        oi = compiled.idx.get(spec.asn)
        if oi is None:
            raise TopologyError(f"unknown AS{spec.asn}")
        epath = spec.export_path()
        ato = None if spec.announce_to is None else frozenset(spec.announce_to)
        specs.append((oi, epath, frozenset(epath), ato))
    return tuple(specs)


def _converge(
    ct: CompiledTopology,
    specs: Sequence[Tuple[int, Tuple[int, ...], frozenset, Optional[frozenset]]],
) -> Tuple[bytearray, List[int], List[int], List[int]]:
    """Run the three Gao–Rexford phases over the compiled topology.

    Returns the parent-pointer route table ``(kind, via, root, plen)``:
    ``kind[i]`` is the RouteKind value (0 = unreached; nonzero doubles as
    the "has a route" bitmap), ``via[i]`` the neighbor index forwarded to
    (-1 at origins), ``root[i]`` the spec index whose export path
    terminates i's parent chain, ``plen[i]`` the AS-path length.

    Heap entries encode ``(pathlen, via, target)`` as the single integer
    ``pathlen*n² + via*n + target``, which orders identically to the
    reference heap because index order is ASN order.  With one origin
    spec every key is unique — each (via, target) pair is pushed at most
    once — so the single-spec fast path heaps bare ints.  With several
    specs, keys can collide between specs of one origin and the
    reference breaks that tie by comparing export paths, so entries
    become ``(key, export_path_rank, spec_index)`` tuples.
    """
    if len(specs) == 1:
        return _converge_single(ct, *specs[0])

    n = ct.n
    n2 = n * n
    asns = ct.asns
    providers = ct.providers
    customers = ct.customers
    peers = ct.peers
    push_ = heappush
    pop_ = heappop

    kind = bytearray(n)
    via: List[int] = [-1] * n
    root: List[int] = [-1] * n
    plen: List[int] = [0] * n

    for oi, _epath, _eset, _ato in specs:
        kind[oi] = _ORIGIN
    spec_sets = [s[2] for s in specs]

    # ---- Phase 1: customer routes climb provider edges ---------------------
    heap: List[Tuple[int, Tuple[int, ...], int]] = []
    for si, (oi, epath, eset, ato) in enumerate(specs):
        base = len(epath) * n2 + oi * n
        for p in providers[oi]:
            pasn = asns[p]
            if (ato is None or pasn in ato) and pasn not in eset:
                push_(heap, (base + p, epath, si))
    while heap:
        key, _rank, si = pop_(heap)
        t = key % n
        if kind[t]:
            continue
        rest = key // n
        kind[t] = _CUSTOMER
        via[t] = rest % n
        root[t] = si
        plen[t] = rest // n
        nbase = key - key % n2 + n2 + t * n  # (pathlen+1, via=t, ·)
        eset = spec_sets[si]
        for p in providers[t]:
            if not kind[p] and asns[p] not in eset:
                push_(heap, (nbase + p, _NO_RANK, si))

    # ---- Phase 2: one hop across peer edges --------------------------------
    # Candidates per peer, best (pathlen, exporter) wins; strict < keeps
    # the earlier (lower-ASN) exporter on ties, as in the reference.
    specs_of_origin: Dict[int, List[int]] = {}
    for si, (oi, _epath, _eset, _ato) in enumerate(specs):
        specs_of_origin.setdefault(oi, []).append(si)
    cand: Dict[int, Tuple[int, int, int]] = {}
    for e in ct.peer_nodes:
        k = kind[e]
        if not k:
            continue
        pe = peers[e]
        if k == _ORIGIN:
            # Later specs of the same origin overwrite earlier ones per
            # peer (reference dict-comprehension semantics).
            base_spec: Dict[int, Tuple[int, int]] = {}
            for si in specs_of_origin[e]:
                _oi, epath, eset, ato = specs[si]
                pl = len(epath)
                for p in pe:
                    if ato is None or asns[p] in ato:
                        base_spec[p] = (pl, si)
            for p, (pl, si) in base_spec.items():
                if kind[p] or asns[p] in spec_sets[si]:
                    continue
                inc = cand.get(p)
                if inc is None or pl < inc[0] or (pl == inc[0] and e < inc[1]):
                    cand[p] = (pl, e, si)
        else:
            pl = plen[e] + 1
            si = root[e]
            eset = spec_sets[si]
            for p in pe:
                if kind[p] or asns[p] in eset:
                    continue
                inc = cand.get(p)
                if inc is None or pl < inc[0] or (pl == inc[0] and e < inc[1]):
                    cand[p] = (pl, e, si)
    for t, (pl, v, si) in cand.items():
        kind[t] = _PEER
        via[t] = v
        root[t] = si
        plen[t] = pl

    # ---- Phase 3: routes descend provider->customer edges ------------------
    heap = []
    for e in ct.cust_nodes:
        k = kind[e]
        if not k:
            continue
        cu = customers[e]
        if k == _ORIGIN:
            for si in specs_of_origin[e]:
                _oi, epath, eset, ato = specs[si]
                base = len(epath) * n2 + e * n
                for c in cu:
                    casn = asns[c]
                    if (ato is None or casn in ato) and casn not in eset:
                        push_(heap, (base + c, epath, si))
        else:
            si = root[e]
            eset = spec_sets[si]
            base = (plen[e] + 1) * n2 + e * n
            for c in cu:
                if not kind[c] and asns[c] not in eset:
                    push_(heap, (base + c, _NO_RANK, si))
    while heap:
        key, _rank, si = pop_(heap)
        t = key % n
        if kind[t]:
            continue
        rest = key // n
        kind[t] = _PROVIDER
        via[t] = rest % n
        root[t] = si
        plen[t] = rest // n
        nbase = key - key % n2 + n2 + t * n
        eset = spec_sets[si]
        for c in customers[t]:
            if not kind[c] and asns[c] not in eset:
                push_(heap, (nbase + c, _NO_RANK, si))

    return kind, via, root, plen


def _converge_single(
    ct: CompiledTopology,
    oi: int,
    epath: Tuple[int, ...],
    eset: frozenset,
    ato: Optional[frozenset],
) -> Tuple[bytearray, List[int], List[int], List[int]]:
    """Single-origin-spec fast path: bare-int heap keys (always unique),
    no per-entry spec bookkeeping.  This is the sweep workhorse."""
    n = ct.n
    n2 = n * n
    asns = ct.asns
    providers = ct.providers
    customers = ct.customers
    peers = ct.peers
    push_ = heappush
    pop_ = heappop

    kind = bytearray(n)
    via: List[int] = [-1] * n
    plen: List[int] = [0] * n
    kind[oi] = _ORIGIN
    pl0 = len(epath)

    # ---- Phase 1: up provider edges ----------------------------------------
    heap: List[int] = []
    base = pl0 * n2 + oi * n
    for p in providers[oi]:
        pasn = asns[p]
        if (ato is None or pasn in ato) and pasn not in eset:
            push_(heap, base + p)
    while heap:
        key = pop_(heap)
        t = key % n
        if kind[t]:
            continue
        rest = key // n
        kind[t] = _CUSTOMER
        via[t] = rest % n
        plen[t] = rest // n
        nbase = key - key % n2 + n2 + t * n
        for p in providers[t]:
            if not kind[p] and asns[p] not in eset:
                push_(heap, nbase + p)

    # ---- Phase 2: one peer hop ---------------------------------------------
    cand: Dict[int, Tuple[int, int]] = {}
    cand_get = cand.get
    for e in ct.peer_nodes:
        k = kind[e]
        if not k:
            continue
        if k == _ORIGIN:
            pl = pl0
            for p in peers[e]:
                pasn = asns[p]
                if ato is not None and pasn not in ato:
                    continue
                if kind[p] or pasn in eset:
                    continue
                inc = cand_get(p)
                if inc is None or pl < inc[0] or (pl == inc[0] and e < inc[1]):
                    cand[p] = (pl, e)
        else:
            pl = plen[e] + 1
            for p in peers[e]:
                if kind[p] or asns[p] in eset:
                    continue
                inc = cand_get(p)
                if inc is None or pl < inc[0] or (pl == inc[0] and e < inc[1]):
                    cand[p] = (pl, e)
    for t, (pl, v) in cand.items():
        kind[t] = _PEER
        via[t] = v
        plen[t] = pl

    # ---- Phase 3: down customer edges --------------------------------------
    heap = []
    for e in ct.cust_nodes:
        k = kind[e]
        if not k:
            continue
        if k == _ORIGIN:
            base = pl0 * n2 + e * n
            for c in customers[e]:
                casn = asns[c]
                if (ato is None or casn in ato) and casn not in eset:
                    push_(heap, base + c)
        else:
            base = (plen[e] + 1) * n2 + e * n
            for c in customers[e]:
                if not kind[c] and asns[c] not in eset:
                    push_(heap, base + c)
    while heap:
        key = pop_(heap)
        t = key % n
        if kind[t]:
            continue
        rest = key // n
        kind[t] = _PROVIDER
        via[t] = rest % n
        plen[t] = rest // n
        nbase = key - key % n2 + n2 + t * n
        for c in customers[t]:
            if not kind[c] and asns[c] not in eset:
                push_(heap, nbase + c)

    return kind, via, [0] * n, plen


def _converge_secure(
    ct: CompiledTopology,
    specs: Sequence[Tuple[int, Tuple[int, ...], frozenset, Optional[frozenset]]],
    sec: "CompiledSecurity",
) -> Tuple[bytearray, List[int], List[int], List[int]]:
    """The three Gao–Rexford phases with per-AS security filters.

    Mirrors :func:`_converge` exactly, with two additions derived from a
    :class:`~repro.secroute.policy.CompiledSecurity`:

    * **ROV drop sets** — per spec, the node indices refusing routes of
      that spec's (Invalid) origin; checked wherever a node would accept
      a route.
    * **Peerlock masks** — ``fmask[i]`` tracks the protected/tier-1 bits
      of node i's AS path (i itself excluded, mirroring the reference's
      ``path[1:]`` tail check which skips the first hop).  A candidate
      popped at ``t`` via ``v`` has tail mask ``fmask[v]`` (or the
      spec's export-path tail mask ``omask[si]`` for direct origin
      pushes, distinguished by the rank field exactly as in
      :func:`_converge`), and commits ``fmask[t] = m | bit(v)``.

    Rejected candidates are skipped without finalizing the slot, so a
    worse candidate can still fill it later — identical semantics to the
    reference's pop-time ``security.rejects`` check.  There is no bare-int
    single-spec fast path here: security runs are correctness-oriented
    and always carry ``(key, rank, spec)`` tuples plus the mask arrays.
    """
    n = ct.n
    n2 = n * n
    asns = ct.asns
    providers = ct.providers
    customers = ct.customers
    peers = ct.peers
    push_ = heappush
    pop_ = heappop

    # -- index the compiled policy against this topology ---------------------
    idx = ct.idx
    drop_idx: List[frozenset] = []
    omask: List[int] = []
    for _oi, epath, _eset, _ato in specs:
        droppers = sec.drops.get(epath[-1])
        drop_idx.append(
            frozenset(idx[a] for a in droppers if a in idx)
            if droppers else frozenset()
        )
        omask.append(sec.path_mask(epath[1:]))
    bit_get = sec.bits.get
    pm_get = sec.pmask.get
    lite = sec.lite
    t1 = sec.t1mask
    bit_arr = [bit_get(a, 0) for a in asns]
    pl_arr = [pm_get(a, 0) for a in asns]
    lt_arr = [t1 if a in lite else 0 for a in asns]

    kind = bytearray(n)
    via: List[int] = [-1] * n
    root: List[int] = [-1] * n
    plen: List[int] = [0] * n
    fmask: List[int] = [0] * n

    for oi, _epath, _eset, _ato in specs:
        kind[oi] = _ORIGIN
    spec_sets = [s[2] for s in specs]

    # ---- Phase 1: customer routes climb provider edges ---------------------
    heap: List[Tuple[int, Tuple[int, ...], int]] = []
    for si, (oi, epath, eset, ato) in enumerate(specs):
        base = len(epath) * n2 + oi * n
        for p in providers[oi]:
            pasn = asns[p]
            if (ato is None or pasn in ato) and pasn not in eset:
                push_(heap, (base + p, epath, si))
    while heap:
        key, rank, si = pop_(heap)
        t = key % n
        if kind[t]:
            continue
        rest = key // n
        v = rest % n
        m = omask[si] if rank else fmask[v]
        if t in drop_idx[si]:
            continue
        if m & (pl_arr[t] | lt_arr[t]):  # from a customer: lite applies
            continue
        kind[t] = _CUSTOMER
        via[t] = v
        root[t] = si
        plen[t] = rest // n
        fmask[t] = m | bit_arr[v]
        nbase = key - key % n2 + n2 + t * n
        eset = spec_sets[si]
        for p in providers[t]:
            if not kind[p] and asns[p] not in eset:
                push_(heap, (nbase + p, _NO_RANK, si))

    # ---- Phase 2: one hop across peer edges --------------------------------
    specs_of_origin: Dict[int, List[int]] = {}
    for si, (oi, _epath, _eset, _ato) in enumerate(specs):
        specs_of_origin.setdefault(oi, []).append(si)
    cand: Dict[int, Tuple[int, int, int, int]] = {}
    for e in ct.peer_nodes:
        k = kind[e]
        if not k:
            continue
        pe = peers[e]
        if k == _ORIGIN:
            base_spec: Dict[int, Tuple[int, int]] = {}
            for si in specs_of_origin[e]:
                _oi, epath, eset, ato = specs[si]
                pl = len(epath)
                for p in pe:
                    if ato is None or asns[p] in ato:
                        base_spec[p] = (pl, si)
            for p, (pl, si) in base_spec.items():
                if kind[p] or asns[p] in spec_sets[si]:
                    continue
                if p in drop_idx[si] or omask[si] & pl_arr[p]:
                    continue
                inc = cand.get(p)
                if inc is None or pl < inc[0] or (pl == inc[0] and e < inc[1]):
                    cand[p] = (pl, e, si, omask[si])
        else:
            pl = plen[e] + 1
            si = root[e]
            eset = spec_sets[si]
            m = fmask[e]
            for p in pe:
                if kind[p] or asns[p] in eset:
                    continue
                if p in drop_idx[si] or m & pl_arr[p]:
                    continue
                inc = cand.get(p)
                if inc is None or pl < inc[0] or (pl == inc[0] and e < inc[1]):
                    cand[p] = (pl, e, si, m)
    for t, (pl, v, si, m) in cand.items():
        kind[t] = _PEER
        via[t] = v
        root[t] = si
        plen[t] = pl
        fmask[t] = m | bit_arr[v]

    # ---- Phase 3: routes descend provider->customer edges ------------------
    heap = []
    for e in ct.cust_nodes:
        k = kind[e]
        if not k:
            continue
        cu = customers[e]
        if k == _ORIGIN:
            for si in specs_of_origin[e]:
                _oi, epath, eset, ato = specs[si]
                base = len(epath) * n2 + e * n
                for c in cu:
                    casn = asns[c]
                    if (ato is None or casn in ato) and casn not in eset:
                        push_(heap, (base + c, epath, si))
        else:
            si = root[e]
            eset = spec_sets[si]
            base = (plen[e] + 1) * n2 + e * n
            for c in cu:
                if not kind[c] and asns[c] not in eset:
                    push_(heap, (base + c, _NO_RANK, si))
    while heap:
        key, rank, si = pop_(heap)
        t = key % n
        if kind[t]:
            continue
        rest = key // n
        v = rest % n
        m = omask[si] if rank else fmask[v]
        if t in drop_idx[si]:
            continue
        if m & pl_arr[t]:  # provider route: lite does not apply
            continue
        kind[t] = _PROVIDER
        via[t] = v
        root[t] = si
        plen[t] = rest // n
        fmask[t] = m | bit_arr[v]
        nbase = key - key % n2 + n2 + t * n
        eset = spec_sets[si]
        for c in customers[t]:
            if not kind[c] and asns[c] not in eset:
                push_(heap, (nbase + c, _NO_RANK, si))

    return kind, via, root, plen


class CompiledOutcome(RoutingOutcome):
    """A :class:`RoutingOutcome` backed by the compact parent-pointer
    table.  AS paths (and :class:`ASRoute` objects) materialize lazily
    and are memoized; everything else reads the arrays directly."""

    def __init__(
        self,
        graph: ASGraph,
        compiled: CompiledTopology,
        table: Tuple[bytearray, List[int], List[int], List[int]],
        spec_paths: Tuple[Tuple[int, ...], ...],
    ) -> None:
        self._graph = graph
        self._compiled = compiled
        self._kind, self._via, self._root, self._plen = table
        self._spec_paths = spec_paths
        self._memo: Dict[int, ASRoute] = {}

    # -- core accessors -------------------------------------------------------

    def route(self, asn: int) -> Optional[ASRoute]:
        memo = self._memo
        route = memo.get(asn)
        if route is not None:
            return route
        i = self._compiled.idx.get(asn)
        if i is None:
            return None
        k = self._kind[i]
        if not k:
            return None
        route = ASRoute(kind=RouteKind(k), path=self._path_of(i), via=self._via_asn(i))
        memo[asn] = route
        return route

    def _via_asn(self, i: int) -> Optional[int]:
        v = self._via[i]
        return None if v < 0 else self._compiled.asns[v]

    def _path_of(self, i: int) -> Tuple[int, ...]:
        """Reconstruct the AS path by walking parent pointers to the
        originating spec's export path."""
        if self._kind[i] == _ORIGIN:
            return ()
        asns = self._compiled.asns
        via = self._via
        kind = self._kind
        parts: List[int] = []
        cur = via[i]
        while kind[cur] != _ORIGIN:
            parts.append(asns[cur])
            cur = via[cur]
        return tuple(parts) + self._spec_paths[self._root[i]]

    def reaches(self, asn: int) -> bool:
        i = self._compiled.idx.get(asn)
        return i is not None and bool(self._kind[i])

    def reachable_asns(self) -> Set[int]:
        asns = self._compiled.asns
        return {asns[i] for i, k in enumerate(self._kind) if k}

    def __len__(self) -> int:
        # kind-code 0 is "not reached"; bytearray.count is C-speed, and
        # telemetry stamps len(outcome) onto every convergence span.
        return len(self._kind) - self._kind.count(0)

    def items(self) -> Iterator[Tuple[int, ASRoute]]:
        asns = self._compiled.asns
        for i, k in enumerate(self._kind):
            if k:
                asn = asns[i]
                yield asn, self.route(asn)

    def forwarding_chain(self, asn: int, max_hops: int = 64) -> List[int]:
        # Same semantics as the base class, but walks the via array
        # without materializing ASRoute objects.
        chain = [asn]
        idx = self._compiled.idx
        asns = self._compiled.asns
        kind = self._kind
        via = self._via
        i = idx.get(asn)
        for _ in range(max_hops):
            if i is None or not kind[i]:
                return chain  # blackhole
            if kind[i] == _ORIGIN:
                return chain
            i = via[i]
            chain.append(asns[i])
        return chain

    def as_path(self, asn: int) -> Optional[Tuple[int, ...]]:
        route = self.route(asn)
        return route.path if route is not None else None


class OutcomeCache:
    """LRU cache of converged outcomes keyed by
    ``(graph version, canonical announcement)``.

    Hit/miss/eviction stats live in a :class:`MetricsRegistry` (labelled
    ``peering_cache_*_total{cache=...}``) — the testbed passes its shared
    registry in so every cache shows up in one export; a standalone cache
    gets a private registry.  The ``hits``/``misses``/``evictions``
    attributes remain readable as plain ints for existing callers."""

    def __init__(
        self,
        maxsize: int = 1024,
        metrics: Optional[MetricsRegistry] = None,
        name: str = "propagation",
    ) -> None:
        self.maxsize = maxsize
        self.name = name
        self._data: "OrderedDict[Tuple, RoutingOutcome]" = OrderedDict()
        registry = metrics if metrics is not None else MetricsRegistry()
        self._hits = registry.counter(
            "peering_cache_hits_total", "Outcome cache hits", ("cache",)
        ).labels(name)
        self._misses = registry.counter(
            "peering_cache_misses_total", "Outcome cache misses", ("cache",)
        ).labels(name)
        self._evictions = registry.counter(
            "peering_cache_evictions_total", "Outcome cache LRU evictions", ("cache",)
        ).labels(name)
        self._entries = registry.gauge(
            "peering_cache_entries", "Outcome cache current size", ("cache",)
        ).labels(name)

    @property
    def hits(self) -> int:
        return int(self._hits.value)

    @property
    def misses(self) -> int:
        return int(self._misses.value)

    @property
    def evictions(self) -> int:
        return int(self._evictions.value)

    def get(self, key: Tuple) -> Optional[RoutingOutcome]:
        outcome = self._data.get(key)
        if outcome is None:
            self._misses.value += 1.0
            return None
        self._data.move_to_end(key)
        self._hits.value += 1.0
        return outcome

    def put(self, key: Tuple, outcome: RoutingOutcome) -> None:
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = outcome
        if len(data) > self.maxsize:
            data.popitem(last=False)
            self._evictions.value += 1.0
        self._entries.value = float(len(data))

    def prune_version(self, version: int) -> None:
        """Drop entries computed against any graph version but ``version``."""
        stale = [key for key in self._data if key[0] != version]
        for key in stale:
            del self._data[key]
        self._entries.value = float(len(self._data))

    def clear(self) -> None:
        self._data.clear()
        self._entries.value = 0.0

    def __len__(self) -> int:
        return len(self._data)

    def stats(self) -> Dict[str, int]:
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


# -- multiprocessing worker plumbing ------------------------------------------
# The compiled topology is shipped once per worker via the pool
# initializer; tasks then carry only the (tiny) canonical spec blobs and
# results only the compact route-table arrays.

_WORKER_TOPOLOGY: Optional[CompiledTopology] = None


def _pool_init(compiled: CompiledTopology) -> None:
    global _WORKER_TOPOLOGY
    _WORKER_TOPOLOGY = compiled


def _pool_run(spec_blob):
    ct = _WORKER_TOPOLOGY
    specs = tuple(
        (ct.idx[asn], epath, frozenset(epath),
         None if ato is None else frozenset(ato))
        for asn, epath, ato in spec_blob
    )
    kind, via, root, plen = _converge(ct, specs)
    return bytes(kind), array("l", via), array("l", root), array("l", plen)


class PropagationEngine:
    """Compiled, cached, batched route propagation over one ``ASGraph``.

    The graph stays mutable: the engine recompiles automatically when
    ``graph.version`` moves, and the result cache never returns an
    outcome computed against a stale topology.
    """

    def __init__(
        self,
        graph: ASGraph,
        cache_size: int = 1024,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.graph = graph
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = OutcomeCache(cache_size, metrics=self.metrics)
        self._compiled: Optional[CompiledTopology] = None
        self._compiles = self.metrics.counter(
            "peering_propagation_compiles_total",
            "Topology compilations (graph version changes)",
        ).labels()
        self._runs = self.metrics.counter(
            "peering_propagation_runs_total",
            "Full convergence runs (cache misses)",
        ).labels()
        self._seconds = self.metrics.histogram(
            "peering_propagation_seconds",
            "Wall-clock convergence time per in-process run",
        ).labels()

    @property
    def compile_count(self) -> int:
        return int(self._compiles.value)

    # -- compilation ----------------------------------------------------------

    def compiled(self) -> CompiledTopology:
        """The compiled topology for the graph's *current* version."""
        compiled = self._compiled
        if compiled is None or compiled.version != self.graph.version:
            compiled = CompiledTopology(self.graph)
            self._compiled = compiled
            self._compiles.inc()
            self.cache.prune_version(compiled.version)
        return compiled

    # -- single announcement --------------------------------------------------

    def propagate(
        self,
        announcement: Announcement,
        use_cache: bool = True,
        security: Optional["CompiledSecurity"] = None,
    ) -> RoutingOutcome:
        """Converged routes for ``announcement``; drop-in for
        :func:`repro.inet.routing.propagate`.

        ``security`` applies per-AS import filters (ROV drop-invalid,
        Peerlock) exactly as the reference path does; a ``SecurityPolicy``
        is compiled against the announcement automatically.  The cache
        key gains the policy fingerprint, so outcomes computed under
        different security configurations (or ROA registry versions)
        never alias."""
        compiled = self.compiled()
        if security is not None and hasattr(security, "compile_for"):
            security = security.compile_for(announcement)  # type: ignore[attr-defined]
        if security is not None and not security.active:
            security = None
        if use_cache:
            key = (
                compiled.version,
                canonical_key(announcement),
                None if security is None else security.fingerprint,
            )
            cached = self.cache.get(key)
            if cached is not None:
                return cached
        outcome = self._run(compiled, announcement, security)
        if use_cache:
            self.cache.put(key, outcome)
        return outcome

    def _run(
        self,
        compiled: CompiledTopology,
        announcement: Announcement,
        security: Optional["CompiledSecurity"] = None,
    ) -> CompiledOutcome:
        started = perf_counter()
        specs = _compile_specs(compiled, announcement)
        if security is None:
            table = _converge(compiled, specs)
        else:
            table = _converge_secure(compiled, specs, security)
        spec_paths = tuple(s[1] for s in specs)
        outcome = CompiledOutcome(self.graph, compiled, table, spec_paths)
        self._runs.inc()
        self._seconds.observe(perf_counter() - started)
        return outcome

    # -- sweeps ---------------------------------------------------------------

    def propagate_many(
        self,
        announcements: Sequence[Announcement],
        parallel: Optional[int] = None,
        use_cache: bool = True,
        security: Optional["CompiledSecurity"] = None,
    ) -> List[RoutingOutcome]:
        """Converge a whole sweep; with ``parallel=N`` fan the cache
        misses out over N worker processes sharing one compiled topology.

        Secured sweeps run serially in-process: the policy compiles
        per-announcement (verdicts depend on prefix and origins), and
        shipping mask tables to pool workers is not worth it for the
        campaign-sized workloads that use them.
        """
        if security is not None:
            return [
                self.propagate(a, use_cache=use_cache, security=security)
                for a in announcements
            ]
        announcements = list(announcements)
        compiled = self.compiled()
        results: List[Optional[RoutingOutcome]] = [None] * len(announcements)
        miss_idx: List[int] = []
        keys: List[Tuple] = []
        for i, announcement in enumerate(announcements):
            key = (compiled.version, canonical_key(announcement), None)
            keys.append(key)
            cached = self.cache.get(key) if use_cache else None
            if cached is not None:
                results[i] = cached
            else:
                miss_idx.append(i)

        if miss_idx:
            workers = 0 if parallel is None else min(parallel, len(miss_idx))
            if workers > 1:
                outcomes = self._run_parallel(
                    compiled, [announcements[i] for i in miss_idx], workers
                )
            else:
                outcomes = [
                    self._run(compiled, announcements[i]) for i in miss_idx
                ]
            for i, outcome in zip(miss_idx, outcomes):
                results[i] = outcome
                if use_cache:
                    self.cache.put(keys[i], outcome)
        return results  # type: ignore[return-value]

    def _run_parallel(
        self,
        compiled: CompiledTopology,
        announcements: Sequence[Announcement],
        workers: int,
    ) -> List[CompiledOutcome]:
        import multiprocessing

        blobs = []
        all_spec_paths = []
        for announcement in announcements:
            specs = _compile_specs(compiled, announcement)  # validates origins
            all_spec_paths.append(tuple(s[1] for s in specs))
            blobs.append(
                tuple(
                    (spec.asn, spec.export_path(), spec.announce_to)
                    for spec in announcement.origins
                )
            )
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # platform without fork
            ctx = multiprocessing.get_context()
        try:
            with ctx.Pool(
                processes=workers, initializer=_pool_init, initargs=(compiled,)
            ) as pool:
                raw = pool.map(_pool_run, blobs)
        except (OSError, PermissionError):
            # Sandboxed/locked-down hosts without working semaphores:
            # degrade to in-process execution rather than failing the sweep.
            return [self._run(compiled, a) for a in announcements]
        self._runs.inc(len(announcements))  # worker runs aren't timed here
        outcomes = []
        for (kind_b, via_a, root_a, plen_a), spec_paths in zip(raw, all_spec_paths):
            table = (bytearray(kind_b), via_a.tolist(), root_a.tolist(), plen_a.tolist())
            outcomes.append(CompiledOutcome(self.graph, compiled, table, spec_paths))
        return outcomes

    # -- reporting ------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        compiled = self._compiled
        return {
            "graph_version": self.graph.version,
            "compiled_version": None if compiled is None else compiled.version,
            "compile_count": self.compile_count,
            "cache": self.cache.stats(),
        }


def default_parallelism() -> int:
    """Worker count for sweep fan-out (leave one CPU for the driver)."""
    return max(1, (os.cpu_count() or 1) - 1)
