"""Compiled Gao–Rexford propagation engine for sweep-style experiments.

Every experiment the paper showcases (§2: LIFEGUARD-style poisoning,
PoiRoot-style selective announcement, anycast prepend engineering) is a
*sweep*: evaluate dozens-to-thousands of announcement configurations over
the same AS graph.  The reference :func:`repro.inet.routing.propagate`
re-derives everything per call: it materializes a full AS-path tuple per
reached AS and pays per-call set copies on every adjacency access.

:class:`PropagationEngine` instead **compiles** the :class:`ASGraph` once
into int-indexed, pre-sorted CSR-style adjacency arrays (invalidated by
the graph's version counter) and converges over a **parent-pointer route
table**: per AS an ``(kind, via, root-spec, pathlen)`` record.  AS paths
are reconstructed lazily on demand, so no path tuples are copied during
convergence.

The trick that makes the route table sufficient: in each propagation
phase, every AS on a candidate's path is already *finalized* (it either
originated the route or was popped from the phase heap earlier), so the
reference's ``neighbor not in path`` loop check decomposes exactly into

* "neighbor already holds a route" — one bitmap read, and
* "neighbor's ASN appears in the origin's export path" (prepends and
  poison sentinels) — one frozenset membership test.

Neither needs the path.  Index order is ASN order, so integer heap
entries tie-break identically to the reference's ASN/path comparisons —
the engine is route-for-route identical to ``propagate()`` (property
tests in ``tests/test_inet_engine.py`` enforce this).

On top sit an LRU result cache keyed by ``(graph version, canonical
announcement)`` and :meth:`PropagationEngine.propagate_many`, which fans
a sweep out over a ``multiprocessing`` pool, shipping the compiled
topology once per worker and compact route tables back.
"""

from __future__ import annotations

import os
from array import array
from collections import OrderedDict
from heapq import heappop, heappush
from time import perf_counter
from typing import (
    TYPE_CHECKING, Any, Callable, Dict, FrozenSet, Iterator, List, Optional,
    Sequence, Set, Tuple,
)

from ..telemetry.metrics import MetricsRegistry
from .routing import Announcement, ASRoute, OriginSpec, RouteKind, RoutingOutcome
from .topology import ASGraph, TopologyError

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..secroute.policy import CompiledSecurity

__all__ = [
    "CompiledTopology",
    "CompiledOutcome",
    "OutcomeCache",
    "PropagationEngine",
    "canonical_key",
]

_ORIGIN = int(RouteKind.ORIGIN)
_CUSTOMER = int(RouteKind.CUSTOMER)
_PEER = int(RouteKind.PEER)
_PROVIDER = int(RouteKind.PROVIDER)

# Empty tie-break rank for non-origin heap entries.  Origin entries carry
# their export path here, mirroring the reference heap's path comparison
# when (pathlen, via, target) tie between two specs of one origin.
_NO_RANK: Tuple[int, ...] = ()

# One compiled origin spec: (origin_index, export_path, export_set,
# announce_to_set); and the parent-pointer route table (kind, via, root,
# plen) every converge function returns.
SpecT = Tuple[int, Tuple[int, ...], FrozenSet[int], Optional[FrozenSet[int]]]
TableT = Tuple[bytearray, List[int], List[int], List[int]]

# _converge_delta gives up (falls back to a full run) when the dirty cone
# exceeds n / _CONE_BAIL_DEN slots — incremental work on a region that
# large loses to the heap-free full converge.
_CONE_BAIL_DEN = 3


class _DeltaUnsupported(Exception):
    """An incremental convergence hit a corner whose reference semantics
    depend on state the delta keeps frozen (equal-key ties across specs,
    improvements into surviving entries under security filters).  The
    caller falls back to a full run — correctness over cleverness."""


class CompiledTopology:
    """An :class:`ASGraph` frozen into int-indexed adjacency arrays.

    ASes are renumbered ``0..n-1`` in ascending-ASN order (so comparing
    indices is comparing ASNs), and each relation is stored CSR-style as
    one flat neighbor array plus per-node offsets.  Per-node tuples are
    derived once for the hot loops; the CSR arrays are also the compact
    pickle form shipped to pool workers.
    """

    __slots__ = (
        "version", "n", "asns", "idx",
        "prov_off", "prov_adj", "cust_off", "cust_adj", "peer_off", "peer_adj",
        "providers", "customers", "peers", "peer_nodes", "cust_nodes",
        "_nbrs",
    )

    def __init__(self, graph: ASGraph) -> None:
        self.version = graph.version
        asns = sorted(graph.asns())
        self.asns: List[int] = asns
        self.n = len(asns)
        idx = {asn: i for i, asn in enumerate(asns)}
        self.idx: Dict[int, int] = idx

        def build(sorted_of: Callable[[int], Tuple[int, ...]]) -> Tuple[array, array]:
            adj = array("l")
            off = array("l", [0])
            for asn in asns:
                # sorted-by-ASN neighbors map to sorted indices (monotone).
                adj.extend(idx[nbr] for nbr in sorted_of(asn))
                off.append(len(adj))
            return off, adj

        self.prov_off, self.prov_adj = build(graph.sorted_providers)
        self.cust_off, self.cust_adj = build(graph.sorted_customers)
        self.peer_off, self.peer_adj = build(graph.sorted_peers)
        self._derive_views()

    def _derive_views(self) -> None:
        def views(off: array, adj: array) -> List[Tuple[int, ...]]:
            lst = adj.tolist()
            return [tuple(lst[off[i]:off[i + 1]]) for i in range(self.n)]

        self.providers = views(self.prov_off, self.prov_adj)
        self.customers = views(self.cust_off, self.cust_adj)
        self.peers = views(self.peer_off, self.peer_adj)
        # Ascending index lists of nodes that have peer / customer edges,
        # so phases 2 and 3 skip the (usually large) pure-stub remainder.
        self.peer_nodes = tuple(i for i, p in enumerate(self.peers) if p)
        self.cust_nodes = tuple(i for i, c in enumerate(self.customers) if c)
        self._nbrs: Optional[List[Tuple[int, ...]]] = None

    def children_index(self) -> List[Tuple[int, ...]]:
        """Per-node merged neighbor tuples — the reusable superset of any
        route table's dependence children.

        Whatever the route kind, ``via[i]`` is a topology neighbor of
        ``i``, so the dependence children of ``v`` (slots whose parent
        pointer is ``v``) are always found inside ``children_index()[v]``
        by checking ``via[child] == v``.  Built once per compiled
        topology (so invalidation rides the graph-version recompile) and
        shared by every delta run, letting withdraw/invalidate passes
        walk exactly the affected cone instead of scanning all n slots.
        """
        nbrs = self._nbrs
        if nbrs is None:
            nbrs = self._nbrs = [
                p + q + c
                for p, q, c in zip(self.providers, self.peers, self.customers)
            ]
        return nbrs

    # -- pickling (pool workers get the CSR arrays, not the tuple views) ------

    def __getstate__(self) -> Tuple:
        return (
            self.version, self.asns,
            self.prov_off, self.prov_adj,
            self.cust_off, self.cust_adj,
            self.peer_off, self.peer_adj,
        )

    def __setstate__(self, state: Tuple) -> None:
        (self.version, self.asns,
         self.prov_off, self.prov_adj,
         self.cust_off, self.cust_adj,
         self.peer_off, self.peer_adj) = state
        self.n = len(self.asns)
        self.idx = {asn: i for i, asn in enumerate(self.asns)}
        self._derive_views()


def canonical_key(announcement: Announcement) -> Tuple:
    """Hashable canonical form of an announcement for result caching.

    Spec order is preserved (it is semantically significant when one
    origin carries several specs); ``announce_to`` is normalized to a
    sorted unique tuple since only membership matters.  The prefix is
    deliberately *not* part of the key: propagation is prefix-agnostic,
    so announcements of different prefixes with identical steering share
    one converged outcome.  (Security-filtered runs key the prefix via
    the policy fingerprint instead — verdicts depend on it.)
    """
    return tuple(
        (
            spec.asn,
            spec.prepend,
            tuple(spec.poison),
            tuple(spec.path_suffix),
            None if spec.announce_to is None
            else tuple(sorted(set(spec.announce_to))),
        )
        for spec in announcement.origins
    )


def _affinity_key(announcement: Announcement) -> Tuple:
    """:func:`canonical_key` minus prepend counts.

    Two announcements with equal affinity keys differ only in prepend
    engineering, so consecutive sweep points within one affinity group
    classify as shift (or noop) deltas — the cheapest regimes.  Sweep
    chains are ordered by this key so workers see whole groups."""
    return tuple(
        (
            spec.asn,
            tuple(spec.poison),
            tuple(spec.path_suffix),
            None if spec.announce_to is None
            else tuple(sorted(set(spec.announce_to))),
        )
        for spec in announcement.origins
    )


def _partition_chains(
    keys: Sequence[Tuple], workers: int
) -> List[List[int]]:
    """Deal affinity groups onto ``workers`` delta chains.

    ``keys[pos]`` is the affinity key (plus security fingerprint) of
    miss ``pos``.  Groups are kept whole — splitting one would turn
    in-group shift deltas into cross-worker full converges — and
    assigned greedily, largest group to the least-loaded worker, so the
    chains stay balanced even when group sizes are skewed.  Group
    discovery order and the stable sort keep the result deterministic.
    Returns non-empty chains of positions (input order within a group)."""
    groups: Dict[Tuple, List[int]] = {}
    for pos, key in enumerate(keys):
        groups.setdefault(key, []).append(pos)
    ordered = sorted(groups.values(), key=len, reverse=True)
    chains: List[List[int]] = [[] for _ in range(max(1, workers))]
    loads = [0] * len(chains)
    for grp in ordered:
        w = loads.index(min(loads))
        chains[w].extend(grp)
        loads[w] += len(grp)
    return [c for c in chains if c]


def _compile_specs(
    compiled: CompiledTopology, announcement: Announcement
) -> Tuple[SpecT, ...]:
    """Per-spec (origin_index, export_path, export_set, announce_to_set)."""
    specs: List[SpecT] = []
    for spec in announcement.origins:
        oi = compiled.idx.get(spec.asn)
        if oi is None:
            raise TopologyError(f"unknown AS{spec.asn}")
        epath = spec.export_path()
        ato = None if spec.announce_to is None else frozenset(spec.announce_to)
        specs.append((oi, epath, frozenset(epath), ato))
    return tuple(specs)


def _converge(
    ct: CompiledTopology,
    specs: Sequence[SpecT],
) -> TableT:
    """Run the three Gao–Rexford phases over the compiled topology.

    Returns the parent-pointer route table ``(kind, via, root, plen)``:
    ``kind[i]`` is the RouteKind value (0 = unreached; nonzero doubles as
    the "has a route" bitmap), ``via[i]`` the neighbor index forwarded to
    (-1 at origins), ``root[i]`` the spec index whose export path
    terminates i's parent chain, ``plen[i]`` the AS-path length.

    Heap entries encode ``(pathlen, via, target)`` as the single integer
    ``pathlen*n² + via*n + target``, which orders identically to the
    reference heap because index order is ASN order.  With one origin
    spec every key is unique — each (via, target) pair is pushed at most
    once — so the single-spec fast path heaps bare ints.  With several
    specs, keys can collide between specs of one origin and the
    reference breaks that tie by comparing export paths, so entries
    become ``(key, export_path_rank, spec_index)`` tuples.
    """
    if len(specs) == 1:
        return _converge_single(ct, *specs[0])

    n = ct.n
    n2 = n * n
    asns = ct.asns
    providers = ct.providers
    customers = ct.customers
    peers = ct.peers
    push_ = heappush
    pop_ = heappop

    kind = bytearray(n)
    via: List[int] = [-1] * n
    root: List[int] = [-1] * n
    plen: List[int] = [0] * n

    for oi, _epath, _eset, _ato in specs:
        kind[oi] = _ORIGIN
    spec_sets = [s[2] for s in specs]

    # ---- Phase 1: customer routes climb provider edges ---------------------
    heap: List[Tuple[int, Tuple[int, ...], int]] = []
    for si, (oi, epath, eset, ato) in enumerate(specs):
        base = len(epath) * n2 + oi * n
        for p in providers[oi]:
            pasn = asns[p]
            if (ato is None or pasn in ato) and pasn not in eset:
                push_(heap, (base + p, epath, si))
    while heap:
        key, _rank, si = pop_(heap)
        t = key % n
        if kind[t]:
            continue
        rest = key // n
        kind[t] = _CUSTOMER
        via[t] = rest % n
        root[t] = si
        plen[t] = rest // n
        nbase = key - key % n2 + n2 + t * n  # (pathlen+1, via=t, ·)
        eset = spec_sets[si]
        for p in providers[t]:
            if not kind[p] and asns[p] not in eset:
                push_(heap, (nbase + p, _NO_RANK, si))

    # ---- Phase 2: one hop across peer edges --------------------------------
    # Candidates per peer, best (pathlen, exporter) wins; strict < keeps
    # the earlier (lower-ASN) exporter on ties, as in the reference.
    specs_of_origin: Dict[int, List[int]] = {}
    for si, (oi, _epath, _eset, _ato) in enumerate(specs):
        specs_of_origin.setdefault(oi, []).append(si)
    cand: Dict[int, Tuple[int, int, int]] = {}
    for e in ct.peer_nodes:
        k = kind[e]
        if not k:
            continue
        pe = peers[e]
        if k == _ORIGIN:
            # Later specs of the same origin overwrite earlier ones per
            # peer (reference dict-comprehension semantics).
            base_spec: Dict[int, Tuple[int, int]] = {}
            for si in specs_of_origin[e]:
                _oi, epath, eset, ato = specs[si]
                pl = len(epath)
                for p in pe:
                    if ato is None or asns[p] in ato:
                        base_spec[p] = (pl, si)
            for p, (pl, si) in base_spec.items():
                if kind[p] or asns[p] in spec_sets[si]:
                    continue
                inc = cand.get(p)
                if inc is None or pl < inc[0] or (pl == inc[0] and e < inc[1]):
                    cand[p] = (pl, e, si)
        else:
            pl = plen[e] + 1
            si = root[e]
            eset = spec_sets[si]
            for p in pe:
                if kind[p] or asns[p] in eset:
                    continue
                inc = cand.get(p)
                if inc is None or pl < inc[0] or (pl == inc[0] and e < inc[1]):
                    cand[p] = (pl, e, si)
    for t, (pl, v, si) in cand.items():
        kind[t] = _PEER
        via[t] = v
        root[t] = si
        plen[t] = pl

    # ---- Phase 3: routes descend provider->customer edges ------------------
    heap = []
    for e in ct.cust_nodes:
        k = kind[e]
        if not k:
            continue
        cu = customers[e]
        if k == _ORIGIN:
            for si in specs_of_origin[e]:
                _oi, epath, eset, ato = specs[si]
                base = len(epath) * n2 + e * n
                for c in cu:
                    casn = asns[c]
                    if (ato is None or casn in ato) and casn not in eset:
                        push_(heap, (base + c, epath, si))
        else:
            si = root[e]
            eset = spec_sets[si]
            base = (plen[e] + 1) * n2 + e * n
            for c in cu:
                if not kind[c] and asns[c] not in eset:
                    push_(heap, (base + c, _NO_RANK, si))
    while heap:
        key, _rank, si = pop_(heap)
        t = key % n
        if kind[t]:
            continue
        rest = key // n
        kind[t] = _PROVIDER
        via[t] = rest % n
        root[t] = si
        plen[t] = rest // n
        nbase = key - key % n2 + n2 + t * n
        eset = spec_sets[si]
        for c in customers[t]:
            if not kind[c] and asns[c] not in eset:
                push_(heap, (nbase + c, _NO_RANK, si))

    return kind, via, root, plen


def _converge_single(
    ct: CompiledTopology,
    oi: int,
    epath: Tuple[int, ...],
    eset: FrozenSet[int],
    ato: Optional[FrozenSet[int]],
) -> TableT:
    """Single-origin-spec fast path: heap-free, level-synchronous frontier
    batching.  This is the sweep workhorse.

    With one spec every edge has unit weight, so the phase-1/phase-3
    Dijkstra degenerates into a BFS by path-length *levels*.  Processing
    levels in ascending order, and the frontier of each level in
    ascending exporter index (= ascending via ASN), makes the first
    writer of a slot the minimum ``(pathlen, via, target)`` key — exactly
    the reference heap's pop order, without a single heap operation.

    The two pop-time predicates ("already has a route" and "ASN appears
    on the export path") fuse into one ``avail`` bytearray: a slot is 1
    iff it is neither settled nor blocked by the export set, so the
    per-edge inner loop is one C-level index read.
    """
    n = ct.n
    asns = ct.asns
    providers = ct.providers
    customers = ct.customers
    peers = ct.peers

    kind = bytearray(n)
    via: List[int] = [-1] * n
    plen: List[int] = [0] * n
    kind[oi] = _ORIGIN
    pl0 = len(epath)

    avail = bytearray(b"\x01") * n
    avail[oi] = 0
    if len(eset) > 1:  # poison / suffix ASNs present in the graph block slots
        idx_get = ct.idx.get
        for blocked_asn in eset:
            bi = idx_get(blocked_asn)
            if bi is not None:
                avail[bi] = 0

    # ---- Phase 1: up provider edges (level-batched BFS) --------------------
    frontier: List[int] = []
    for p in providers[oi]:
        if avail[p] and (ato is None or asns[p] in ato):
            avail[p] = 0
            kind[p] = _CUSTOMER
            via[p] = oi
            plen[p] = pl0
            frontier.append(p)
    lvl = pl0
    while frontier:
        frontier.sort()
        lvl += 1
        nxt: List[int] = []
        for v in frontier:
            for t in providers[v]:
                if avail[t]:
                    avail[t] = 0
                    kind[t] = _CUSTOMER
                    via[t] = v
                    plen[t] = lvl
                    nxt.append(t)
        frontier = nxt

    # ---- Phase 2: one peer hop ---------------------------------------------
    # Exporters iterate in ascending index, so the first candidate seen at
    # a given path length already has the lowest via — the incumbent check
    # needs only the strict length comparison.
    cand: Dict[int, Tuple[int, int]] = {}
    cand_get = cand.get
    for e in ct.peer_nodes:
        k = kind[e]
        if not k:
            continue
        if k == _ORIGIN:
            pl = pl0
            for p in peers[e]:
                if not avail[p] or (ato is not None and asns[p] not in ato):
                    continue
                inc = cand_get(p)
                if inc is None or pl < inc[0]:
                    cand[p] = (pl, e)
        else:
            pl = plen[e] + 1
            for p in peers[e]:
                if not avail[p]:
                    continue
                inc = cand_get(p)
                if inc is None or pl < inc[0]:
                    cand[p] = (pl, e)
    for t, (pl, v) in cand.items():
        avail[t] = 0
        kind[t] = _PEER
        via[t] = v
        plen[t] = pl

    # ---- Phase 3: down customer edges (bucketed by export path length) ----
    # Origin exports sit at pl0, strictly below every other exporter
    # (plen >= pl0 everywhere), so they settle first unconditionally.
    buckets: Dict[int, List[int]] = {}
    bucket_of = buckets.setdefault
    for e in ct.cust_nodes:
        k = kind[e]
        if k and k != _ORIGIN:
            bucket_of(plen[e] + 1, []).append(e)
    frontier = []
    for c in customers[oi]:
        if avail[c] and (ato is None or asns[c] in ato):
            avail[c] = 0
            kind[c] = _PROVIDER
            via[c] = oi
            plen[c] = pl0
            frontier.append(c)
    if frontier:
        bucket_of(pl0 + 1, []).extend(frontier)
    while buckets:
        lvl = min(buckets)
        frontier = buckets.pop(lvl)
        frontier.sort()
        nxt = []
        for v in frontier:
            for t in customers[v]:
                if avail[t]:
                    avail[t] = 0
                    kind[t] = _PROVIDER
                    via[t] = v
                    plen[t] = lvl
                    nxt.append(t)
        if nxt:
            bucket_of(lvl + 1, []).extend(nxt)

    return kind, via, [0] * n, plen


def _converge_secure(
    ct: CompiledTopology,
    specs: Sequence[SpecT],
    sec: "CompiledSecurity",
) -> TableT:
    """The three Gao–Rexford phases with per-AS security filters.

    Mirrors :func:`_converge` exactly, with two additions derived from a
    :class:`~repro.secroute.policy.CompiledSecurity`:

    * **ROV drop sets** — per spec, the node indices refusing routes of
      that spec's (Invalid) origin; checked wherever a node would accept
      a route.
    * **Peerlock masks** — ``fmask[i]`` tracks the protected/tier-1 bits
      of node i's AS path (i itself excluded, mirroring the reference's
      ``path[1:]`` tail check which skips the first hop).  A candidate
      popped at ``t`` via ``v`` has tail mask ``fmask[v]`` (or the
      spec's export-path tail mask ``omask[si]`` for direct origin
      pushes, distinguished by the rank field exactly as in
      :func:`_converge`), and commits ``fmask[t] = m | bit(v)``.

    Rejected candidates are skipped without finalizing the slot, so a
    worse candidate can still fill it later — identical semantics to the
    reference's pop-time ``security.rejects`` check.  There is no bare-int
    single-spec fast path here: security runs are correctness-oriented
    and always carry ``(key, rank, spec)`` tuples plus the mask arrays.
    """
    n = ct.n
    n2 = n * n
    asns = ct.asns
    providers = ct.providers
    customers = ct.customers
    peers = ct.peers
    push_ = heappush
    pop_ = heappop

    # -- index the compiled policy against this topology ---------------------
    idx = ct.idx
    drop_idx: List[frozenset] = []
    omask: List[int] = []
    for _oi, epath, _eset, _ato in specs:
        droppers = sec.drops.get(epath[-1])
        drop_idx.append(
            frozenset(idx[a] for a in droppers if a in idx)
            if droppers else frozenset()
        )
        omask.append(sec.path_mask(epath[1:]))
    bit_get = sec.bits.get
    pm_get = sec.pmask.get
    lite = sec.lite
    t1 = sec.t1mask
    bit_arr = [bit_get(a, 0) for a in asns]
    pl_arr = [pm_get(a, 0) for a in asns]
    lt_arr = [t1 if a in lite else 0 for a in asns]

    kind = bytearray(n)
    via: List[int] = [-1] * n
    root: List[int] = [-1] * n
    plen: List[int] = [0] * n
    fmask: List[int] = [0] * n

    for oi, _epath, _eset, _ato in specs:
        kind[oi] = _ORIGIN
    spec_sets = [s[2] for s in specs]

    # ---- Phase 1: customer routes climb provider edges ---------------------
    heap: List[Tuple[int, Tuple[int, ...], int]] = []
    for si, (oi, epath, eset, ato) in enumerate(specs):
        base = len(epath) * n2 + oi * n
        for p in providers[oi]:
            pasn = asns[p]
            if (ato is None or pasn in ato) and pasn not in eset:
                push_(heap, (base + p, epath, si))
    while heap:
        key, rank, si = pop_(heap)
        t = key % n
        if kind[t]:
            continue
        rest = key // n
        v = rest % n
        m = omask[si] if rank else fmask[v]
        if t in drop_idx[si]:
            continue
        if m & (pl_arr[t] | lt_arr[t]):  # from a customer: lite applies
            continue
        kind[t] = _CUSTOMER
        via[t] = v
        root[t] = si
        plen[t] = rest // n
        fmask[t] = m | bit_arr[v]
        nbase = key - key % n2 + n2 + t * n
        eset = spec_sets[si]
        for p in providers[t]:
            if not kind[p] and asns[p] not in eset:
                push_(heap, (nbase + p, _NO_RANK, si))

    # ---- Phase 2: one hop across peer edges --------------------------------
    specs_of_origin: Dict[int, List[int]] = {}
    for si, (oi, _epath, _eset, _ato) in enumerate(specs):
        specs_of_origin.setdefault(oi, []).append(si)
    cand: Dict[int, Tuple[int, int, int, int]] = {}
    for e in ct.peer_nodes:
        k = kind[e]
        if not k:
            continue
        pe = peers[e]
        if k == _ORIGIN:
            base_spec: Dict[int, Tuple[int, int]] = {}
            for si in specs_of_origin[e]:
                _oi, epath, eset, ato = specs[si]
                pl = len(epath)
                for p in pe:
                    if ato is None or asns[p] in ato:
                        base_spec[p] = (pl, si)
            for p, (pl, si) in base_spec.items():
                if kind[p] or asns[p] in spec_sets[si]:
                    continue
                if p in drop_idx[si] or omask[si] & pl_arr[p]:
                    continue
                inc = cand.get(p)
                if inc is None or pl < inc[0] or (pl == inc[0] and e < inc[1]):
                    cand[p] = (pl, e, si, omask[si])
        else:
            pl = plen[e] + 1
            si = root[e]
            eset = spec_sets[si]
            m = fmask[e]
            for p in pe:
                if kind[p] or asns[p] in eset:
                    continue
                if p in drop_idx[si] or m & pl_arr[p]:
                    continue
                inc = cand.get(p)
                if inc is None or pl < inc[0] or (pl == inc[0] and e < inc[1]):
                    cand[p] = (pl, e, si, m)
    for t, (pl, v, si, m) in cand.items():
        kind[t] = _PEER
        via[t] = v
        root[t] = si
        plen[t] = pl
        fmask[t] = m | bit_arr[v]

    # ---- Phase 3: routes descend provider->customer edges ------------------
    heap = []
    for e in ct.cust_nodes:
        k = kind[e]
        if not k:
            continue
        cu = customers[e]
        if k == _ORIGIN:
            for si in specs_of_origin[e]:
                _oi, epath, eset, ato = specs[si]
                base = len(epath) * n2 + e * n
                for c in cu:
                    casn = asns[c]
                    if (ato is None or casn in ato) and casn not in eset:
                        push_(heap, (base + c, epath, si))
        else:
            si = root[e]
            eset = spec_sets[si]
            base = (plen[e] + 1) * n2 + e * n
            for c in cu:
                if not kind[c] and asns[c] not in eset:
                    push_(heap, (base + c, _NO_RANK, si))
    while heap:
        key, rank, si = pop_(heap)
        t = key % n
        if kind[t]:
            continue
        rest = key // n
        v = rest % n
        m = omask[si] if rank else fmask[v]
        if t in drop_idx[si]:
            continue
        if m & pl_arr[t]:  # provider route: lite does not apply
            continue
        kind[t] = _PROVIDER
        via[t] = v
        root[t] = si
        plen[t] = rest // n
        fmask[t] = m | bit_arr[v]
        nbase = key - key % n2 + n2 + t * n
        eset = spec_sets[si]
        for c in customers[t]:
            if not kind[c] and asns[c] not in eset:
                push_(heap, (nbase + c, _NO_RANK, si))

    return kind, via, root, plen


def _spec_diff(
    old_specs: Sequence[SpecT], new_specs: Sequence[SpecT]
) -> Tuple[Dict[int, int], List[int], List[int]]:
    """Monotone content matching between two compiled spec tuples.

    Returns ``(remap, dirty_old, dirty_new)``: ``remap`` maps each
    *stable* old spec index to its new index, the dirty lists hold the
    unmatched remainder on either side.  Matching is order-preserving
    (greedy, in-order) because spec order is semantically significant —
    same-origin overwrite semantics and heap tie-breaks both read it — so
    a reordered spec counts as withdrawn-plus-reannounced.
    """
    remap: Dict[int, int] = {}
    j = 0
    for osi, ospec in enumerate(old_specs):
        for nsi in range(j, len(new_specs)):
            if new_specs[nsi] == ospec:
                remap[osi] = nsi
                j = nsi + 1
                break
    matched = set(remap.values())
    dirty_old = [i for i in range(len(old_specs)) if i not in remap]
    dirty_new = [i for i in range(len(new_specs)) if i not in matched]
    return remap, dirty_old, dirty_new


def _converge_delta(
    ct: CompiledTopology,
    old_specs: Sequence[SpecT],
    old_table: TableT,
    new_specs: Sequence[SpecT],
    sec: Optional["CompiledSecurity"] = None,
) -> Optional[Tuple[TableT, int]]:
    """Incrementally re-converge ``new_specs`` starting from the table of
    ``old_specs`` on the *same* compiled topology.

    The route table makes withdrawal exact: ``root`` is constant along
    every via chain, so the cone of a changed spec is precisely the slots
    whose root is that spec — clear them, remap surviving roots, and
    re-run the three phases over a heap seeded only at the boundary:

    * dirty specs announce fresh from their origins,
    * surviving holders adjacent to a cleared slot re-offer their routes,
    * phase 2 pull-recomputes exactly the peers of changed exporters,
    * phase 3 first invalidates the provider-route subtrees hanging off
      any changed exporter (old-children walk), then reseeds.

    Surviving entries are *frozen*: a popped candidate only touches one
    when it strictly beats it, and every improvement re-pushes its
    expansions so the cascade rewrites the affected subtree.  Because
    heap keys pop in ascending order, any pop that beats a stored entry
    is necessarily beating frozen (old-run) state — new-run settles are
    already minimal.  Two corners where exact reference semantics would
    need more than the frozen table offers raise
    :class:`_DeltaUnsupported` (caller falls back to a full run): equal
    ``(plen, via)`` ties resolved on export-path content across different
    specs, and improvements into frozen entries while security filters
    are active (downstream path masks would go stale).

    Returns ``((kind, via, root, plen), touched)`` with ``touched`` the
    number of slots examined/rewritten, or ``None`` when no old spec
    survives (a full run does the same work).
    """
    remap, dirty_old, dirty_new = _spec_diff(old_specs, new_specs)
    if not remap:
        return None

    n = ct.n
    n2 = n * n
    asns = ct.asns
    providers = ct.providers
    customers = ct.customers
    peers = ct.peers
    push_ = heappush
    pop_ = heappop

    kind0, via0, root0, plen0 = old_table
    kind = bytearray(kind0)
    via = list(via0)
    plen = list(plen0)
    dirty_old_set = set(dirty_old)
    dirty_new_set = set(dirty_new)

    # Root remap: the common sweep case keeps every stable spec at its
    # old index (identity remap), so the new root array is a C-level copy
    # of the old one — stale values on cleared slots are never read
    # before being rewritten at settle time.  Only a genuinely reordered
    # spec list pays the O(n) per-slot remap pass.
    if all(o == m for o, m in remap.items()):
        root = list(root0)
    else:
        root = [-1] * n
        for i, k in enumerate(kind0):
            if k and k != _ORIGIN:
                m = remap.get(root0[i])
                if m is not None:
                    root[i] = m

    touched = bytearray(n)
    cleared: List[int] = []
    # A dirty cone covering a third of the graph can't be meaningfully
    # cheaper than full re-convergence (and the odds that some candidate
    # collides with a frozen tie — forcing a late _DeltaUnsupported
    # fallback after real work — grow with the region).  The walks below
    # discover the cone incrementally, so the bail trips as soon as the
    # region is provably too large — cost sunk scales with the bail
    # threshold, not with n.  Tests widen the denominator to force cone
    # attempts on large regions.
    bail_at = n // _CONE_BAIL_DEN
    nbrs = ct.children_index()

    # ---- Withdraw: root is constant along via chains, so the slots
    # rooted in a dirty spec are exactly the old dependence subtree of
    # its origin, restricted to dirty roots.  Walking that subtree over
    # the children index costs O(cone edges) instead of an O(n) scan.
    for o in {old_specs[si][0] for si in dirty_old}:
        stack = [o]
        while stack:
            v2 = stack.pop()
            for t in nbrs[v2]:
                k = kind[t]
                if (
                    k and k != _ORIGIN
                    and via0[t] == v2
                    and root0[t] in dirty_old_set
                ):
                    kind[t] = 0
                    via[t] = -1
                    root[t] = -1
                    plen[t] = 0
                    touched[t] = 1
                    cleared.append(t)
                    stack.append(t)
            if len(cleared) > bail_at:
                return None

    # ---- Origin status changes invalidate whole dependence subtrees:
    # an AS that gains or loses origin status changes every route whose
    # via chain passes through it, whatever the root.  Same walk, not
    # restricted by root.
    old_orig = {s[0] for s in old_specs}
    new_orig = {s[0] for s in new_specs}
    osc = old_orig ^ new_orig
    if osc:
        stack = []
        for o in osc:
            if kind[o]:
                kind[o] = 0
                via[o] = -1
                plen[o] = 0
                root[o] = -1
            if not touched[o]:
                touched[o] = 1
                cleared.append(o)
            stack.append(o)
        while stack:
            v2 = stack.pop()
            for d in nbrs[v2]:
                if kind[d] and kind[d] != _ORIGIN and via0[d] == v2:
                    kind[d] = 0
                    via[d] = -1
                    plen[d] = 0
                    root[d] = -1
                    touched[d] = 1
                    cleared.append(d)
                    stack.append(d)
            if len(cleared) > bail_at:
                return None
        for o in new_orig:
            if kind[o] != _ORIGIN:
                kind[o] = _ORIGIN
                via[o] = -1
                plen[o] = 0
                root[o] = -1

    # ---- Security tables (mirrors _converge_secure) and path-mask
    # reconstruction for survivors, parents before children.
    drop_idx: List[FrozenSet[int]] = []
    omask: List[int] = []
    bit_arr: List[int] = []
    pl_arr: List[int] = []
    lt_arr: List[int] = []
    fmask: List[int] = []
    if sec is not None:
        idx = ct.idx
        for _oi, epath, _eset, _ato in new_specs:
            droppers = sec.drops.get(epath[-1])
            drop_idx.append(
                frozenset(idx[a] for a in droppers if a in idx)
                if droppers else frozenset()
            )
            omask.append(sec.path_mask(epath[1:]))
        bit_get = sec.bits.get
        pm_get = sec.pmask.get
        lite = sec.lite
        t1 = sec.t1mask
        bit_arr = [bit_get(a, 0) for a in asns]
        pl_arr = [pm_get(a, 0) for a in asns]
        lt_arr = [t1 if a in lite else 0 for a in asns]
        fmask = [0] * n
        for i in sorted(
            (i for i, k in enumerate(kind) if k and k != _ORIGIN),
            key=plen.__getitem__,
        ):
            v2 = via[i]
            base = omask[root[i]] if kind[v2] == _ORIGIN else fmask[v2]
            fmask[i] = base | bit_arr[v2]

    spec_sets = [s[2] for s in new_specs]
    specs_of_origin: Dict[int, List[int]] = {}
    for si, (soi, _e, _s, _a) in enumerate(new_specs):
        specs_of_origin.setdefault(soi, []).append(si)

    changed_p1: Set[int] = set(cleared)

    # ---- Phase 1 delta: dirty specs seed at their origins; survivors at
    # the withdrawal boundary re-offer routes into cleared slots.
    heap: List[Tuple[int, Tuple[int, ...], int]] = []
    for si in dirty_new:
        soi, epath, eset, ato = new_specs[si]
        base2 = len(epath) * n2 + soi * n
        for p in providers[soi]:
            pasn = asns[p]
            if (ato is None or pasn in ato) and pasn not in eset:
                push_(heap, (base2 + p, epath, si))
    for t in cleared:
        tasn = asns[t]
        for c in customers[t]:
            kc = kind[c]
            if kc == _CUSTOMER:
                si = root[c]
                if tasn not in spec_sets[si]:
                    push_(heap, ((plen[c] + 1) * n2 + c * n + t, _NO_RANK, si))
            elif kc == _ORIGIN:
                for si in specs_of_origin.get(c, ()):
                    if si in dirty_new_set:
                        continue
                    _soi, epath, eset, ato = new_specs[si]
                    if (ato is None or tasn in ato) and tasn not in eset:
                        push_(heap, (len(epath) * n2 + c * n + t, epath, si))
    while heap:
        key, rank, si = pop_(heap)
        t = key % n
        kt = kind[t]
        if kt == _ORIGIN:
            continue
        rest = key // n
        v2 = rest % n
        pl = rest // n
        if kt == _CUSTOMER:
            curkey = plen[t] * n2 + via[t] * n + t
            if key > curkey:
                continue
            if key == curkey:
                if root[t] != si:
                    # equal (plen, via) across specs: reference breaks the
                    # tie on export-path content the table doesn't keep
                    raise _DeltaUnsupported
                continue
            if sec is not None:
                # improving a frozen entry would stale downstream masks
                raise _DeltaUnsupported
            if pl == plen[t]:
                if si != root[t]:
                    raise _DeltaUnsupported
                # same spec, same length, lower via: reroute in place —
                # children's (plen, via) keys are unaffected.
                via[t] = v2
                touched[t] = 1
                continue
            # strictly shorter: settle below; expansions cascade through
            # the old subtree with strictly better keys.
        elif sec is not None:
            m = omask[si] if rank else fmask[v2]
            if t in drop_idx[si]:
                continue
            if m & (pl_arr[t] | lt_arr[t]):
                continue
            fmask[t] = m | bit_arr[v2]
        kind[t] = _CUSTOMER
        via[t] = v2
        root[t] = si
        plen[t] = pl
        touched[t] = 1
        changed_p1.add(t)
        eset = spec_sets[si]
        nbase = (pl + 1) * n2 + t * n
        for p in providers[t]:
            kp = kind[p]
            if kp == _ORIGIN or asns[p] in eset:
                continue
            if kp == _CUSTOMER and nbase + p >= plen[p] * n2 + via[p] * n + p:
                continue  # can't beat the incumbent
            push_(heap, (nbase + p, _NO_RANK, si))

    # ---- Phase 2 delta: pull-recompute exactly the peers of changed
    # exporters (and changed slots themselves).  Pulls read only
    # phase-1/origin state, so they are order-independent.
    dirty_origins = {old_specs[si][0] for si in dirty_old}
    dirty_origins.update(new_specs[si][0] for si in dirty_new)
    exp_changed = changed_p1 | dirty_origins
    # Per-target lists of *changed* adjacent exporters.  Offers from
    # unchanged exporters are literally unchanged (exporter state, spec
    # content, and security masks all survive), so most recomputes only
    # need the old incumbent plus these lists — an IXP member with
    # thousands of peers no longer rescans the whole mesh because one of
    # them changed.  Targets whose old route was customer/origin (which
    # shadowed every peer offer) still rescan in full.
    cand_of: Dict[int, List[int]] = {}
    for e in exp_changed:
        ke = kind[e]
        if (not ke or ke == _PEER or ke == _PROVIDER) and peers[e]:
            cand_of.setdefault(e, [])
        for p in peers[e]:
            kp = kind[p]
            if not kp or kp == _PEER or kp == _PROVIDER:
                cand_of.setdefault(p, []).append(e)
    changed_p2: Set[int] = set()
    for t, cands in cand_of.items():
        k0t = kind0[t]
        dense = 4 * len(cands) >= len(peers[t])
        if k0t == _PEER:
            e0 = via0[t]
            # incumbent unchanged: it still beats every unchanged rival
            # (it won the old run), so only it and the changed exporters
            # can produce the new minimum.  Dense candidate lists fall
            # back to the plain mesh scan — cheaper than set + sort.
            scan: Sequence[int] = (
                peers[t]
                if dense or e0 in exp_changed
                else sorted({e0, *cands})
            )
        elif not k0t or k0t == _PROVIDER:
            # old run found no valid peer offer for t, and unchanged
            # exporters still offer nothing — only changed ones can.
            scan = peers[t] if dense else sorted(cands)
        else:
            scan = peers[t]
        tasn = asns[t]
        best_pl = -1
        best_e = -1
        best_si = -1
        best_m = 0
        for e in scan:  # ascending e: first win at a length is lowest via
            ke = kind[e]
            if ke == _ORIGIN:
                sel = -1
                for si in specs_of_origin.get(e, ()):
                    ato = new_specs[si][3]
                    if ato is None or tasn in ato:
                        sel = si  # later specs overwrite, as in reference
                if sel < 0 or tasn in spec_sets[sel]:
                    continue
                pl = len(new_specs[sel][1])
                m = 0
                if sec is not None:
                    m = omask[sel]
                    if t in drop_idx[sel] or m & pl_arr[t]:
                        continue
                si2 = sel
            elif ke == _CUSTOMER:
                si2 = root[e]
                if tasn in spec_sets[si2]:
                    continue
                pl = plen[e] + 1
                m = 0
                if sec is not None:
                    m = fmask[e]
                    if t in drop_idx[si2] or m & pl_arr[t]:
                        continue
            else:
                continue
            if best_pl < 0 or pl < best_pl:
                best_pl = pl
                best_e = e
                best_si = si2
                best_m = m
        if best_pl < 0:
            if kind[t] == _PEER:
                kind[t] = 0
                via[t] = -1
                root[t] = -1
                plen[t] = 0
                touched[t] = 1
                changed_p2.add(t)
                cleared.append(t)
        else:
            if (kind[t] != _PEER or via[t] != best_e
                    or root[t] != best_si or plen[t] != best_pl):
                kind[t] = _PEER
                via[t] = best_e
                root[t] = best_si
                plen[t] = best_pl
                touched[t] = 1
                changed_p2.add(t)
            if sec is not None:
                fmask[t] = best_m | bit_arr[best_e]

    # ---- Phase 3 delta: provider-route subtrees hanging off any changed
    # exporter are stale.  A slot still holding _PROVIDER here is an old
    # survivor (via == via0), and provider routes only ever point at a
    # topology customer — so walking customers[v2] and filtering on
    # kind/via visits exactly the old via0-children, without building a
    # full O(n) children array.
    changed12 = exp_changed | changed_p2
    stack2 = list(changed12)
    while stack2:
        v2 = stack2.pop()
        for d in customers[v2]:
            if kind[d] == _PROVIDER and via[d] == v2:
                kind[d] = 0
                via[d] = -1
                root[d] = -1
                plen[d] = 0
                touched[d] = 1
                cleared.append(d)
                stack2.append(d)

    heap = []
    for si in dirty_new:
        soi, epath, eset, ato = new_specs[si]
        base2 = len(epath) * n2 + soi * n
        for c in customers[soi]:
            casn = asns[c]
            if (ato is None or casn in ato) and casn not in eset:
                push_(heap, (base2 + c, epath, si))
    for e in changed12:
        ke = kind[e]
        if ke == _CUSTOMER or ke == _PEER:
            si = root[e]
            eset = spec_sets[si]
            base2 = (plen[e] + 1) * n2 + e * n
            for c in customers[e]:
                if asns[c] not in eset:
                    push_(heap, (base2 + c, _NO_RANK, si))
    # Every slot that went route->empty was appended to `cleared` when it
    # was cleared (withdraw, origin-status, phase-2 removal, phase-3
    # invalidation), so the reseed only visits the dirty region instead
    # of scanning all n slots.  Re-settled slots skip via the kind check.
    for t in cleared:
        if kind[t]:
            continue
        tasn = asns[t]
        for v2 in providers[t]:
            kv = kind[v2]
            if not kv:
                continue
            if kv == _ORIGIN:
                for si in specs_of_origin.get(v2, ()):
                    if si in dirty_new_set:
                        continue
                    _soi, epath, eset, ato = new_specs[si]
                    if (ato is None or tasn in ato) and tasn not in eset:
                        push_(heap, (len(epath) * n2 + v2 * n + t, epath, si))
            elif v2 not in changed12:
                si = root[v2]
                if tasn not in spec_sets[si]:
                    push_(heap, ((plen[v2] + 1) * n2 + v2 * n + t, _NO_RANK, si))
    while heap:
        key, rank, si = pop_(heap)
        t = key % n
        kt = kind[t]
        if kt and kt != _PROVIDER:
            continue
        rest = key // n
        v2 = rest % n
        pl = rest // n
        if kt == _PROVIDER:
            curkey = plen[t] * n2 + via[t] * n + t
            if key > curkey:
                continue
            if key == curkey:
                if root[t] != si:
                    raise _DeltaUnsupported
                continue
            if sec is not None:
                raise _DeltaUnsupported
            if pl == plen[t]:
                if si != root[t]:
                    raise _DeltaUnsupported
                via[t] = v2
                touched[t] = 1
                continue
        elif sec is not None:
            m = omask[si] if rank else fmask[v2]
            if t in drop_idx[si]:
                continue
            if m & pl_arr[t]:  # provider route: lite does not apply
                continue
            fmask[t] = m | bit_arr[v2]
        kind[t] = _PROVIDER
        via[t] = v2
        root[t] = si
        plen[t] = pl
        touched[t] = 1
        eset = spec_sets[si]
        nbase = (pl + 1) * n2 + t * n
        for c in customers[t]:
            kc = kind[c]
            if kc == 0:
                if asns[c] not in eset:
                    push_(heap, (nbase + c, _NO_RANK, si))
            elif kc == _PROVIDER:
                if asns[c] not in eset and nbase + c < plen[c] * n2 + via[c] * n + c:
                    push_(heap, (nbase + c, _NO_RANK, si))

    return (kind, via, root, plen), touched.count(1)


class CompiledOutcome(RoutingOutcome):
    """A :class:`RoutingOutcome` backed by the compact parent-pointer
    table.  AS paths (and :class:`ASRoute` objects) materialize lazily
    and are memoized; everything else reads the arrays directly."""

    def __init__(
        self,
        graph: ASGraph,
        compiled: CompiledTopology,
        table: TableT,
        spec_paths: Tuple[Tuple[int, ...], ...],
        specs: Optional[Tuple[SpecT, ...]] = None,
        security_fp: Optional[Tuple] = None,
        plen_shift: int = 0,
    ) -> None:
        self._graph = graph
        self._compiled = compiled
        self._kind, self._via, self._root, self._plen = table
        # A pure prepend change shifts every selected route's path length
        # by the same amount; the shift is recorded here instead of
        # copying the 50k-entry plen array (accessors reconstruct paths
        # from via pointers and never read plen, so materialization —
        # see _table() — is deferred until a cone delta needs it).
        self._plen_shift = plen_shift
        self._spec_paths = spec_paths
        # Delta-propagation provenance: the compiled specs this table was
        # converged for and the security fingerprint in effect (None =
        # unsecured).  propagate_delta only reuses a table whose
        # provenance matches the new request's.
        self._specs = specs
        self._security_fp = security_fp
        self._memo: Dict[int, ASRoute] = {}

    def _table(self) -> TableT:
        """The parent-pointer table with any pending plen shift applied.

        Materializes at most once (rebinding ``self._plen`` to a fresh
        list — the shared predecessor array is never mutated); origin
        and unreached slots keep their plen untouched, matching what an
        eager shift would have produced."""
        s = self._plen_shift
        if s:
            self._plen = [
                p + s if (k and k != _ORIGIN) else p
                for k, p in zip(self._kind, self._plen)
            ]
            self._plen_shift = 0
        return (self._kind, self._via, self._root, self._plen)

    # -- core accessors -------------------------------------------------------

    def route(self, asn: int) -> Optional[ASRoute]:
        memo = self._memo
        route = memo.get(asn)
        if route is not None:
            return route
        i = self._compiled.idx.get(asn)
        if i is None:
            return None
        k = self._kind[i]
        if not k:
            return None
        route = ASRoute(kind=RouteKind(k), path=self._path_of(i), via=self._via_asn(i))
        memo[asn] = route
        return route

    def _via_asn(self, i: int) -> Optional[int]:
        v = self._via[i]
        return None if v < 0 else self._compiled.asns[v]

    def _path_of(self, i: int) -> Tuple[int, ...]:
        """Reconstruct the AS path by walking parent pointers to the
        originating spec's export path."""
        if self._kind[i] == _ORIGIN:
            return ()
        asns = self._compiled.asns
        via = self._via
        kind = self._kind
        parts: List[int] = []
        cur = via[i]
        while kind[cur] != _ORIGIN:
            parts.append(asns[cur])
            cur = via[cur]
        return tuple(parts) + self._spec_paths[self._root[i]]

    def reaches(self, asn: int) -> bool:
        i = self._compiled.idx.get(asn)
        return i is not None and bool(self._kind[i])

    def reachable_asns(self) -> Set[int]:
        asns = self._compiled.asns
        return {asns[i] for i, k in enumerate(self._kind) if k}

    def __len__(self) -> int:
        # kind-code 0 is "not reached"; bytearray.count is C-speed, and
        # telemetry stamps len(outcome) onto every convergence span.
        return len(self._kind) - self._kind.count(0)

    def items(self) -> Iterator[Tuple[int, ASRoute]]:
        asns = self._compiled.asns
        for i, k in enumerate(self._kind):
            if k:
                asn = asns[i]
                yield asn, self.route(asn)

    def forwarding_chain(self, asn: int, max_hops: int = 64) -> List[int]:
        # Same semantics as the base class, but walks the via array
        # without materializing ASRoute objects.
        chain = [asn]
        idx = self._compiled.idx
        asns = self._compiled.asns
        kind = self._kind
        via = self._via
        i = idx.get(asn)
        for _ in range(max_hops):
            if i is None or not kind[i]:
                return chain  # blackhole
            if kind[i] == _ORIGIN:
                return chain
            i = via[i]
            chain.append(asns[i])
        return chain

    def as_path(self, asn: int) -> Optional[Tuple[int, ...]]:
        route = self.route(asn)
        return route.path if route is not None else None

    # -- anycast fast path ----------------------------------------------------

    def origin_spec_index(self, asn: int) -> Optional[int]:
        """Which origin spec's export terminates ``asn``'s forwarding
        chain — the index into the announcement's ``origins`` tuple, or
        None when unreached.  For a multi-site anycast announcement (one
        spec per site) this *is* the catchment identity: the site whose
        announcement front won ``asn``, answered from the root array
        without materializing a route."""
        i = self._compiled.idx.get(asn)
        if i is None or not self._kind[i]:
            return None
        return self._root[i]

    def spec_table(self) -> Tuple[Dict[int, int], bytearray, List[int], List[int]]:
        """The raw per-AS arrays ``(index_of, kind, root, plen)`` with any
        pending path-length shift applied.

        ``index_of`` maps ASN to slot; ``kind[slot]`` is the RouteKind
        code (0 = unreached), ``root[slot]`` the winning origin-spec
        index, ``plen[slot]`` the selected path length.  This is the bulk
        interface population-scale catchment mapping reads — millions of
        clients collapse to two array lookups each instead of per-AS
        route materialization.  Callers must not mutate the arrays."""
        kind, _via, root, plen = self._table()
        return self._compiled.idx, kind, root, plen


class OutcomeCache:
    """LRU cache of converged outcomes keyed by
    ``(graph version, canonical announcement)``.

    Hit/miss/eviction stats live in a :class:`MetricsRegistry` (labelled
    ``peering_cache_*_total{cache=...}``) — the testbed passes its shared
    registry in so every cache shows up in one export; a standalone cache
    gets a private registry.  The ``hits``/``misses``/``evictions``
    attributes remain readable as plain ints for existing callers."""

    def __init__(
        self,
        maxsize: int = 1024,
        metrics: Optional[MetricsRegistry] = None,
        name: str = "propagation",
    ) -> None:
        self.maxsize = maxsize
        self.name = name
        self._data: "OrderedDict[Tuple, RoutingOutcome]" = OrderedDict()
        # Keys bucketed by their graph-version component (key[0]), so
        # prune_version touches only stale entries instead of scanning
        # the whole cache on every graph mutation.
        self._by_version: Dict[object, Set[Tuple]] = {}
        registry = metrics if metrics is not None else MetricsRegistry()
        self._hits = registry.counter(
            "peering_cache_hits_total", "Outcome cache hits", ("cache",)
        ).labels(name)
        self._misses = registry.counter(
            "peering_cache_misses_total", "Outcome cache misses", ("cache",)
        ).labels(name)
        self._evictions = registry.counter(
            "peering_cache_evictions_total", "Outcome cache LRU evictions", ("cache",)
        ).labels(name)
        self._entries = registry.gauge(
            "peering_cache_entries", "Outcome cache current size", ("cache",)
        ).labels(name)

    @property
    def hits(self) -> int:
        return int(self._hits.value)

    @property
    def misses(self) -> int:
        return int(self._misses.value)

    @property
    def evictions(self) -> int:
        return int(self._evictions.value)

    def get(self, key: Tuple) -> Optional[RoutingOutcome]:
        outcome = self._data.get(key)
        if outcome is None:
            self._misses.value += 1.0
            return None
        self._data.move_to_end(key)
        self._hits.value += 1.0
        return outcome

    def put(self, key: Tuple, outcome: RoutingOutcome) -> None:
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = outcome
        self._by_version.setdefault(key[0], set()).add(key)
        if len(data) > self.maxsize:
            old_key, _ = data.popitem(last=False)
            bucket = self._by_version.get(old_key[0])
            if bucket is not None:
                bucket.discard(old_key)
                if not bucket:
                    del self._by_version[old_key[0]]
            self._evictions.value += 1.0
        self._entries.value = float(len(data))

    def prune_version(self, version: int) -> None:
        """Drop entries computed against any graph version but ``version``.

        O(stale entries) via the per-version key buckets — a graph
        mutation no longer pays a full cache scan to invalidate."""
        buckets = self._by_version
        data = self._data
        for ver in [v for v in buckets if v != version]:
            for key in buckets.pop(ver):
                del data[key]
        self._entries.value = float(len(data))

    def clear(self) -> None:
        self._data.clear()
        self._by_version.clear()
        self._entries.value = 0.0

    def __len__(self) -> int:
        return len(self._data)

    def stats(self) -> Dict[str, int]:
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


# -- multiprocessing worker plumbing ------------------------------------------
# The compiled topology (and any compiled security masks, deduped) are
# shipped once per worker via the pool initializer; tasks then carry
# whole *chains* of (tiny) canonical spec blobs ordered for delta
# affinity, and results carry one compact entry per chain point: either
# a route table or a reference to an earlier table plus a pending plen
# shift.  Workers converge incrementally exactly like the serial sweep
# path, so the 10x delta-chaining win survives the fan-out.

_WORKER_TOPOLOGY: Optional[CompiledTopology] = None
_WORKER_SECURITIES: Tuple["CompiledSecurity", ...] = ()

_DELTA_MODES = ("noop", "shift", "cone", "fallback", "full")

# Chain-result entries: ("table", kind, via, root, plen) ships a full
# route table; ("shift", base_pos, pending) references the table entry
# at base_pos in the same chain, sharing all four arrays with a pending
# uniform plen shift (0 for a pure noop).  The two shapes differ in
# arity, so the alias is a variadic tuple dispatched on entry[0].
ChainEntryT = Tuple[Any, ...]
ChainBlobT = Tuple[Tuple[int, Tuple[int, ...], Optional[Tuple[int, ...]]], ...]
ChainResultT = Tuple[List[ChainEntryT], Dict[str, int], int]


def _pool_init(
    compiled: CompiledTopology,
    securities: Sequence["CompiledSecurity"] = (),
) -> None:
    global _WORKER_TOPOLOGY, _WORKER_SECURITIES
    _WORKER_TOPOLOGY = compiled
    _WORKER_SECURITIES = tuple(securities)


def _pool_run_chain(chain: Sequence[Tuple[ChainBlobT, int]]) -> ChainResultT:
    """Converge one delta-affinity chain of (spec_blob, sec_slot) items.

    Mirrors the serial sweep loop: each point reuses the previous
    point's route table when the regime allows (noop/shift/cone), and
    only regime transitions or security-fingerprint changes pay a full
    converge.  Shift points ship no arrays at all — just a reference to
    the chain's last full table and the accumulated plen offset."""
    ct = _WORKER_TOPOLOGY
    assert ct is not None  # set by the pool initializer
    secs = _WORKER_SECURITIES
    n = ct.n
    entries: List[ChainEntryT] = []
    counts = dict.fromkeys(_DELTA_MODES, 0)
    saved = 0
    prev_specs: Optional[Tuple[SpecT, ...]] = None
    prev_slot = -2  # sec slot of the previous point (-1 = unsecured)
    table: Optional[TableT] = None
    pending = 0  # un-materialized plen shift carried by `table`
    base_pos = -1  # entries index of the table backing shift references
    for spec_blob, sec_slot in chain:
        specs = tuple(
            (ct.idx[asn], epath, frozenset(epath),
             None if ato is None else frozenset(ato))
            for asn, epath, ato in spec_blob
        )
        sec = None if sec_slot < 0 else secs[sec_slot]
        mode = "full"
        if prev_specs is not None and sec_slot == prev_slot:
            assert table is not None
            if specs == prev_specs:
                counts["noop"] += 1
                saved += n
                entries.append(("shift", base_pos, pending))
                continue
            shift = PropagationEngine._shift_delta(prev_specs, specs, sec)
            if shift is not None:
                pending += shift
                counts["shift"] += 1
                saved += n
                entries.append(("shift", base_pos, pending))
                prev_specs = specs
                continue
            if pending:
                # cone deltas need real plen values; materialize like
                # CompiledOutcome._table (origins/unreached untouched)
                kind0, via0, root0, plen0 = table
                plen0 = [
                    p + pending if (k and k != _ORIGIN) else p
                    for k, p in zip(kind0, plen0)
                ]
                table = (kind0, via0, root0, plen0)
                pending = 0
            try:
                res = _converge_delta(ct, prev_specs, table, specs, sec)
            except _DeltaUnsupported:
                res = None
            if res is not None:
                table, frontier = res
                mode = "cone"
                saved += max(0, n - frontier)
            else:
                mode = "fallback"
                table = None
        else:
            table = None
            pending = 0
        if table is None:
            table = (
                _converge(ct, specs) if sec is None
                else _converge_secure(ct, specs, sec)
            )
            pending = 0
        counts[mode] += 1
        kind, via, root, plen = table
        entries.append((
            "table", bytes(kind),
            array("l", via), array("l", root), array("l", plen),
        ))
        base_pos = len(entries) - 1
        prev_specs = specs
        prev_slot = sec_slot
    return entries, counts, saved


class PropagationEngine:
    """Compiled, cached, batched route propagation over one ``ASGraph``.

    The graph stays mutable: the engine recompiles automatically when
    ``graph.version`` moves, and the result cache never returns an
    outcome computed against a stale topology.
    """

    def __init__(
        self,
        graph: ASGraph,
        cache_size: int = 1024,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.graph = graph
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = OutcomeCache(cache_size, metrics=self.metrics)
        self._compiled: Optional[CompiledTopology] = None
        self._compiles = self.metrics.counter(
            "peering_propagation_compiles_total",
            "Topology compilations (graph version changes)",
        ).labels()
        self._runs = self.metrics.counter(
            "peering_propagation_runs_total",
            "Full convergence runs (cache misses)",
        ).labels()
        self._seconds = self.metrics.histogram(
            "peering_propagation_seconds",
            "Wall-clock convergence time per in-process run",
        ).labels()
        # Incremental-convergence instrumentation: runs by regime (noop /
        # shift / cone / fallback / full), the per-run recomputed-frontier
        # histogram, and a running total of table slots reused as-is —
        # the looking glass reads these to show work saved.
        self._delta_runs = self.metrics.counter(
            "peering_propagation_delta_runs_total",
            "Incremental propagation runs by regime",
            ("mode",),
        )
        self._delta_frontier = self.metrics.histogram(
            "peering_propagation_delta_frontier_size",
            "AS slots recomputed per incremental convergence",
            buckets=(0.0, 1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0),
        ).labels()
        self._delta_saved = self.metrics.counter(
            "peering_propagation_delta_saved_total",
            "AS slots reused from the previous route table by delta runs",
        ).labels()
        # Parallel-sweep instrumentation: chains dispatched to pool
        # workers, worker-side regime counts (also folded into the
        # overall delta counters above), and pool degradations — spawn
        # (no fork on this platform) or serial (pool creation failed).
        self._par_chains = self.metrics.counter(
            "peering_propagation_parallel_chains_total",
            "Delta chains dispatched to pool workers",
        ).labels()
        self._par_delta_runs = self.metrics.counter(
            "peering_propagation_parallel_delta_runs_total",
            "Worker-side incremental propagation runs by regime",
            ("mode",),
        )
        self._pool_fallbacks = self.metrics.counter(
            "peering_propagation_pool_fallbacks_total",
            "Parallel sweeps degraded to a spawn context or serial runs",
            ("kind",),
        )

    @property
    def compile_count(self) -> int:
        return int(self._compiles.value)

    # -- compilation ----------------------------------------------------------

    def compiled(self) -> CompiledTopology:
        """The compiled topology for the graph's *current* version."""
        compiled = self._compiled
        if compiled is None or compiled.version != self.graph.version:
            compiled = CompiledTopology(self.graph)
            self._compiled = compiled
            self._compiles.inc()
            self.cache.prune_version(compiled.version)
        return compiled

    # -- single announcement --------------------------------------------------

    def propagate(
        self,
        announcement: Announcement,
        use_cache: bool = True,
        security: Optional["CompiledSecurity"] = None,
    ) -> RoutingOutcome:
        """Converged routes for ``announcement``; drop-in for
        :func:`repro.inet.routing.propagate`.

        ``security`` applies per-AS import filters (ROV drop-invalid,
        Peerlock) exactly as the reference path does; a ``SecurityPolicy``
        is compiled against the announcement automatically.  The cache
        key gains the policy fingerprint, so outcomes computed under
        different security configurations (or ROA registry versions)
        never alias."""
        compiled = self.compiled()
        if security is not None and hasattr(security, "compile_for"):
            security = security.compile_for(announcement)  # type: ignore[attr-defined]
        if security is not None and not security.active:
            security = None
        key = (
            compiled.version,
            canonical_key(announcement),
            None if security is None else security.fingerprint,
        )
        if use_cache:
            cached = self.cache.get(key)
            if cached is not None:
                return cached
        outcome = self._run(compiled, announcement, security)
        if use_cache:
            self.cache.put(key, outcome)
        return outcome

    def propagate_delta(
        self,
        prev_outcome: Optional[RoutingOutcome],
        announcement: Announcement,
        use_cache: bool = True,
        security: Optional["CompiledSecurity"] = None,
    ) -> RoutingOutcome:
        """Converged routes for ``announcement``, reusing the route table
        of ``prev_outcome`` where the change cannot have moved it.

        The result is route-for-route identical to :meth:`propagate` —
        incrementality is purely an optimization, picked per change:

        * **noop** — identical steering: the previous outcome *is* the
          answer.
        * **shift** — same origin/export-set/targets, only the export
          path length changed (prepend engineering): every surviving
          route keeps its (kind, via) and shifts ``plen`` uniformly.
        * **cone** — general case: withdraw exactly the cones rooted in
          changed specs, re-seed the frontier at the changed origin and
          the withdrawal boundary, and converge only ASes whose best
          route could change.
        * **fallback / full** — no reusable previous table (different
          graph version or security fingerprint, no stable specs, or an
          exact-semantics corner): a normal full convergence.

        ``prev_outcome`` may be any outcome this engine produced for the
        *current* graph version under the same security fingerprint;
        anything else degrades gracefully to a full run.  Cache keys are
        identical to :meth:`propagate`'s, so delta-produced outcomes
        compose with fingerprinted security lookups and never alias."""
        compiled = self.compiled()
        if security is not None and hasattr(security, "compile_for"):
            security = security.compile_for(announcement)  # type: ignore[attr-defined]
        if security is not None and not security.active:
            security = None
        sec_fp = None if security is None else security.fingerprint
        key = (compiled.version, canonical_key(announcement), sec_fp)
        if use_cache:
            cached = self.cache.get(key)
            if cached is not None:
                return cached
        outcome = self._run_delta(
            compiled, announcement, prev_outcome, security, sec_fp
        )
        if use_cache:
            self.cache.put(key, outcome)
        return outcome

    @staticmethod
    def _shift_delta(
        old_specs: Tuple[SpecT, ...],
        new_specs: Tuple[SpecT, ...],
        security: Optional["CompiledSecurity"],
    ) -> Optional[int]:
        """Path-length delta if the change is a pure prepend adjustment
        (single spec, same origin/export-set/targets): acceptance
        decisions depend only on those plus — under security — the
        export path's tail mask and last hop, so (kind, via) is
        preserved exactly and plen shifts uniformly.  None otherwise."""
        if len(old_specs) != 1 or len(new_specs) != 1:
            return None
        ooi, oepath, oeset, oato = old_specs[0]
        noi, nepath, neset, nato = new_specs[0]
        if noi != ooi or neset != oeset or nato != oato:
            return None
        if security is not None:
            if nepath[-1] != oepath[-1]:
                return None
            if security.path_mask(nepath[1:]) != security.path_mask(oepath[1:]):
                return None
        return len(nepath) - len(oepath)

    def _run_delta(
        self,
        compiled: CompiledTopology,
        announcement: Announcement,
        prev: Optional[RoutingOutcome],
        security: Optional["CompiledSecurity"],
        sec_fp: Optional[Tuple],
    ) -> RoutingOutcome:
        started = perf_counter()
        new_specs = _compile_specs(compiled, announcement)
        base: Optional[CompiledOutcome] = None
        if (
            isinstance(prev, CompiledOutcome)
            and prev._compiled is compiled
            and prev._specs is not None
            and prev._security_fp == sec_fp
        ):
            base = prev
        mode = "full"
        table: Optional[TableT] = None
        frontier = 0
        plen_shift = 0
        if base is not None:
            old_specs = base._specs
            assert old_specs is not None
            if new_specs == old_specs:
                self._observe_delta("noop", 0, compiled.n, started)
                return base
            shift = self._shift_delta(old_specs, new_specs, security)
            if shift is not None:
                # Tables are never mutated after construction, so all
                # four arrays are shared with the previous outcome; the
                # uniform plen shift stays pending (composing with any
                # shift the base itself still carries) until someone
                # actually needs plen values.
                table = (base._kind, base._via, base._root, base._plen)
                plen_shift = base._plen_shift + shift
                mode = "shift"
            else:
                old_table = base._table()
                try:
                    res = _converge_delta(
                        compiled, old_specs, old_table, new_specs, security
                    )
                except _DeltaUnsupported:
                    res = None
                if res is not None:
                    table, frontier = res
                    mode = "cone"
                else:
                    mode = "fallback"
        if table is None:
            if security is None:
                table = _converge(compiled, new_specs)
            else:
                table = _converge_secure(compiled, new_specs, security)
            frontier = compiled.n
        spec_paths = tuple(s[1] for s in new_specs)
        outcome = CompiledOutcome(
            self.graph, compiled, table, spec_paths,
            specs=new_specs, security_fp=sec_fp, plen_shift=plen_shift,
        )
        self._runs.inc()
        self._observe_delta(mode, frontier, compiled.n, started)
        return outcome

    def _observe_delta(
        self, mode: str, frontier: int, n: int, started: float
    ) -> None:
        self._delta_runs.labels(mode).inc()
        if mode in ("noop", "shift", "cone"):
            self._delta_frontier.observe(float(frontier))
            self._delta_saved.inc(float(max(0, n - frontier)))
        self._seconds.observe(perf_counter() - started)

    def _run(
        self,
        compiled: CompiledTopology,
        announcement: Announcement,
        security: Optional["CompiledSecurity"] = None,
    ) -> CompiledOutcome:
        started = perf_counter()
        specs = _compile_specs(compiled, announcement)
        if security is None:
            table = _converge(compiled, specs)
        else:
            table = _converge_secure(compiled, specs, security)
        spec_paths = tuple(s[1] for s in specs)
        outcome = CompiledOutcome(
            self.graph, compiled, table, spec_paths,
            specs=specs,
            security_fp=None if security is None else security.fingerprint,
        )
        self._runs.inc()
        self._seconds.observe(perf_counter() - started)
        return outcome

    # -- sweeps ---------------------------------------------------------------

    def propagate_many(
        self,
        announcements: Sequence[Announcement],
        parallel: Optional[int] = None,
        use_cache: bool = True,
        security: Optional["CompiledSecurity"] = None,
    ) -> List[RoutingOutcome]:
        """Converge a whole sweep; with ``parallel=N`` fan the cache
        misses out over N worker processes sharing one compiled topology.

        Misses are reordered for delta affinity (same steering group —
        and same security fingerprint — adjacent) and chained through
        incremental reconvergence both serially and inside each pool
        worker, so a steering sweep pays full converges only at group
        boundaries.  Secured sweeps compile the policy per announcement
        (verdicts depend on prefix and origins) and ship the deduped
        compiled masks to workers alongside the topology.
        """
        announcements = list(announcements)
        compiled = self.compiled()
        secs: List[Optional["CompiledSecurity"]]
        if security is None:
            secs = [None] * len(announcements)
        elif hasattr(security, "compile_for"):
            secs = [
                security.compile_for(a)  # type: ignore[attr-defined]
                for a in announcements
            ]
            secs = [s if s is not None and s.active else None for s in secs]
        else:
            one = security if security.active else None
            secs = [one] * len(announcements)
        fps = [None if s is None else s.fingerprint for s in secs]

        results: List[Optional[RoutingOutcome]] = [None] * len(announcements)
        miss_idx: List[int] = []
        keys: List[Tuple] = []
        for i, announcement in enumerate(announcements):
            key = (compiled.version, canonical_key(announcement), fps[i])
            keys.append(key)
            cached = self.cache.get(key) if use_cache else None
            if cached is not None:
                results[i] = cached
            else:
                miss_idx.append(i)

        if miss_idx:
            aff = [
                (_affinity_key(announcements[i]), fps[i]) for i in miss_idx
            ]
            workers = 0 if not parallel else min(int(parallel), len(miss_idx))
            outcomes: Optional[List[CompiledOutcome]] = None
            if workers > 1:
                outcomes = self._run_parallel_chains(
                    compiled,
                    [announcements[i] for i in miss_idx],
                    [secs[i] for i in miss_idx],
                    [fps[i] for i in miss_idx],
                    _partition_chains(aff, workers),
                )
            if outcomes is not None:
                for pos, outcome in enumerate(outcomes):
                    i = miss_idx[pos]
                    results[i] = outcome
                    if use_cache:
                        self.cache.put(keys[i], outcome)
            else:
                # Serial (or pool-degraded) sweeps chain through delta
                # propagation in affinity order: every miss reuses the
                # previous miss's route table where the regime allows.
                prev: Optional[RoutingOutcome] = None
                [chain] = _partition_chains(aff, 1)
                for pos in chain:
                    i = miss_idx[pos]
                    outcome = self._run_delta(
                        compiled, announcements[i], prev, secs[i], fps[i]
                    )
                    results[i] = outcome
                    if use_cache:
                        self.cache.put(keys[i], outcome)
                    prev = outcome
        return results  # type: ignore[return-value]

    def _run_parallel_chains(
        self,
        compiled: CompiledTopology,
        announcements: Sequence[Announcement],
        secs: Sequence[Optional["CompiledSecurity"]],
        fps: Sequence[Optional[Tuple]],
        chains: List[List[int]],
    ) -> Optional[List[CompiledOutcome]]:
        """Run delta chains in a worker pool; None = degrade to serial.

        Ships the compiled topology plus the *unique* compiled-security
        objects once per worker; each task is one chain of canonical
        spec blobs with a slot index into that security table.  Workers
        return one compact entry per point (a table, or a reference to
        an earlier in-chain table plus a pending plen shift) and their
        per-regime counts, which fold into the engine's delta metrics."""
        import multiprocessing

        all_specs: List[Tuple[SpecT, ...]] = []
        blobs: List[Tuple] = []
        for announcement in announcements:
            specs = _compile_specs(compiled, announcement)  # validates origins
            all_specs.append(specs)
            blobs.append(
                tuple(
                    (spec.asn, spec.export_path(), spec.announce_to)
                    for spec in announcement.origins
                )
            )
        # Dedupe shipped securities: (fingerprint, drop-sets) pins the
        # converge-relevant state, so sweeps under one policy ship each
        # distinct mask table once instead of once per announcement.
        sec_objs: List["CompiledSecurity"] = []
        slot_of: Dict[Tuple, int] = {}
        slots: List[int] = []
        for sec in secs:
            if sec is None:
                slots.append(-1)
                continue
            skey = (
                sec.fingerprint,
                tuple(sorted(
                    (o, tuple(sorted(d))) for o, d in sec.drops.items()
                )),
            )
            slot = slot_of.get(skey)
            if slot is None:
                slot = len(sec_objs)
                sec_objs.append(sec)
                slot_of[skey] = slot
            slots.append(slot)
        payloads = [
            [(blobs[pos], slots[pos]) for pos in chain] for chain in chains
        ]
        ctx: multiprocessing.context.BaseContext
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # platform without fork: pickle the topology
            ctx = multiprocessing.get_context("spawn")
            self._pool_fallbacks.labels("spawn").inc()
        try:
            with ctx.Pool(
                processes=len(payloads),
                initializer=_pool_init,
                initargs=(compiled, sec_objs),
            ) as pool:
                raw = pool.map(_pool_run_chain, payloads)
        except (OSError, PermissionError):
            # Sandboxed/locked-down hosts without working semaphores:
            # degrade to serial delta chaining rather than failing.
            self._pool_fallbacks.labels("serial").inc()
            return None
        outcomes: List[Optional[CompiledOutcome]] = [None] * len(announcements)
        for chain, (entries, counts, saved) in zip(chains, raw):
            chain_outcomes: List[CompiledOutcome] = []
            for pos, entry in zip(chain, entries):
                specs = all_specs[pos]
                spec_paths = tuple(s[1] for s in specs)
                if entry[0] == "table":
                    _tag, kind_b, via_a, root_a, plen_a = entry
                    table = (
                        bytearray(kind_b), via_a.tolist(),
                        root_a.tolist(), plen_a.tolist(),
                    )
                    outcome = CompiledOutcome(
                        self.graph, compiled, table, spec_paths,
                        specs=specs, security_fp=fps[pos],
                    )
                else:
                    _tag2, base_pos, pending = entry
                    base = chain_outcomes[base_pos]
                    outcome = CompiledOutcome(
                        self.graph, compiled,
                        (base._kind, base._via, base._root, base._plen),
                        spec_paths, specs=specs, security_fp=fps[pos],
                        plen_shift=pending,
                    )
                chain_outcomes.append(outcome)
                outcomes[pos] = outcome
            for mode, count in counts.items():
                if count:
                    self._delta_runs.labels(mode).inc(count)
                    self._par_delta_runs.labels(mode).inc(count)
            self._delta_saved.inc(float(saved))
            # noops return the prior table and are not "runs" serially
            self._runs.inc(sum(counts.values()) - counts["noop"])
            self._par_chains.inc()
        return outcomes  # type: ignore[return-value]

    # -- reporting ------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        compiled = self._compiled
        return {
            "graph_version": self.graph.version,
            "compiled_version": None if compiled is None else compiled.version,
            "compile_count": self.compile_count,
            "cache": self.cache.stats(),
            "delta": {
                mode: int(self._delta_runs.labels(mode).value)
                for mode in _DELTA_MODES
            },
            "delta_saved_slots": int(self._delta_saved.value),
            "parallel": {
                "chains": int(self._par_chains.value),
                "delta": {
                    mode: int(self._par_delta_runs.labels(mode).value)
                    for mode in _DELTA_MODES
                },
                "pool_fallbacks": {
                    kind: int(self._pool_fallbacks.labels(kind).value)
                    for kind in ("spawn", "serial")
                },
            },
        }


def default_parallelism() -> int:
    """Worker count for sweep fan-out (leave one CPU for the driver)."""
    return max(1, (os.cpu_count() or 1) - 1)
