"""Policy-based interdomain route propagation (Gao–Rexford model).

This engine computes, for one announcement, the route every AS on the
graph selects — the AS-level analogue of letting BGP converge.  It is the
substrate standing in for "the live Internet" that the real PEERING
testbed peers with (see DESIGN.md, substitution table).

Model (the standard one from interdomain routing research):

* **Preference**: customer-learned routes over peer-learned over
  provider-learned (economics), then shortest AS path, then lowest
  next-hop ASN (deterministic tie-break).
* **Export (valley-free)**: routes learned from customers are exported to
  everyone; routes learned from peers or providers only to customers.
  An AS's own prefixes are exported to everyone.

The propagation runs in the classic three phases (up via customer edges,
across one peer hop, down via provider edges), each as a shortest-path
search, which yields the unique stable solution under these policies.

Experiments hook in through :class:`OriginSpec`: multiple origins
(anycast / hijack), AS-path prepending, AS-path poisoning (loop-detection
steering, as used by LIFEGUARD), selective announcement to a subset
of neighbors (the PEERING mux's per-peer announcement control), and
``path_suffix`` stuffing (route-leak emulation: the leaker re-originates
a learned path, so the announcement looks like a customer route while
still ending at the legitimate origin).

Security hooks: ``propagate(..., security=...)`` accepts a
:class:`repro.secroute.policy.CompiledSecurity` (or a
:class:`~repro.secroute.policy.SecurityPolicy`, compiled on the fly) and
applies per-AS route filters — RFC 6811 drop-invalid ROV and Peerlock
leak containment — at every acceptance point.  A rejected candidate is
simply never selected; worse candidates can still fill the slot, exactly
as on a real router that filtered the best path.  The compiled engine
(:mod:`repro.inet.engine`) implements the identical predicate over bit
masks; equivalence is property-tested.

Announcements optionally carry the :class:`~repro.net.addr.Prefix` they
are for.  Propagation itself is prefix-agnostic (each prefix converges
independently), but the prefix feeds RPKI origin validation and lets
:func:`resolve_lpm` combine per-prefix outcomes into the
longest-prefix-match forwarding decision — how a sub-prefix hijack
captures traffic even from ASes that still hold the covering route.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union
from enum import IntEnum

from ..net.addr import IPAddress, Prefix
from .topology import ASGraph

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..secroute.policy import CompiledSecurity

__all__ = [
    "RouteKind",
    "ASRoute",
    "OriginSpec",
    "Announcement",
    "RoutingOutcome",
    "propagate",
    "propagate_sequence",
    "resolve_lpm",
]


class RouteKind(IntEnum):
    """Preference classes, higher preferred (Gao–Rexford)."""

    ORIGIN = 4
    CUSTOMER = 3
    PEER = 2
    PROVIDER = 1


@dataclass(frozen=True)
class ASRoute:
    """The route one AS selected for the announced prefix.

    ``path`` is the AS path as that AS sees it (first hop first, origin
    last, including any prepending/poisoning the origin injected).
    ``via`` is the neighbor it forwards to (None at the origin).
    """

    kind: RouteKind
    path: Tuple[int, ...]
    via: Optional[int]

    @property
    def length(self) -> int:
        return len(self.path)

    @property
    def origin(self) -> Optional[int]:
        return self.path[-1] if self.path else None


@dataclass(frozen=True)
class OriginSpec:
    """How one AS originates the announcement.

    * ``prepend`` — extra copies of the origin ASN on the exported path.
    * ``poison`` — ASNs sandwiched into the path (``O X O``) so that the
      listed ASes reject the route via loop detection.
    * ``announce_to`` — neighbors to announce to (None = all neighbors);
      this is the PEERING "pick and choose peers" control.
    * ``path_suffix`` — ASNs appended after everything else.  A route
      leak is ``OriginSpec(asn=leaker, path_suffix=leaked_path)``: the
      leaker re-originates a learned route, so neighbors see
      ``leaker, …suffix…, true_origin`` — origin-valid under RPKI (that
      is why leaks need Peerlock, not ROV), rejected via loop detection
      by ASes already on the suffix, and propagated by the leaker's
      providers as if it were a customer route.
    """

    asn: int
    prepend: int = 0
    poison: Tuple[int, ...] = ()
    announce_to: Optional[Tuple[int, ...]] = None
    path_suffix: Tuple[int, ...] = ()

    def export_path(self) -> Tuple[int, ...]:
        path = (self.asn,) * (1 + self.prepend)
        if self.poison:
            path = path + tuple(self.poison) + (self.asn,)
        return path + tuple(self.path_suffix)


@dataclass(frozen=True)
class Announcement:
    """One prefix-level announcement, possibly multi-origin (anycast or
    hijack experiments announce the same prefix from several ASes).

    ``prefix`` is optional: propagation is prefix-agnostic, but origin
    validation (:mod:`repro.secroute`) and longest-prefix-match
    resolution across several announcements (:func:`resolve_lpm`) need
    to know which prefix the announcement is for."""

    origins: Tuple[OriginSpec, ...]
    prefix: Optional[Prefix] = None

    @classmethod
    def single(cls, asn: int, prefix: Optional[Prefix] = None, **kwargs) -> "Announcement":
        return cls(origins=(OriginSpec(asn=asn, **kwargs),), prefix=prefix)

    def origin_asns(self) -> Set[int]:
        return {spec.asn for spec in self.origins}


class RoutingOutcome:
    """Converged per-AS selected routes for one announcement."""

    def __init__(self, graph: ASGraph, routes: Dict[int, ASRoute]) -> None:
        self._graph = graph
        self._routes = routes

    def route(self, asn: int) -> Optional[ASRoute]:
        return self._routes.get(asn)

    def reaches(self, asn: int) -> bool:
        return asn in self._routes

    def reachable_asns(self) -> Set[int]:
        return set(self._routes)

    def __len__(self) -> int:
        return len(self._routes)

    def items(self) -> Iterable[Tuple[int, ASRoute]]:
        return self._routes.items()

    def as_path(self, asn: int) -> Optional[Tuple[int, ...]]:
        route = self.route(asn)
        return route.path if route is not None else None

    def forwarding_chain(self, asn: int, max_hops: int = 64) -> List[int]:
        """The sequence of ASes a packet traverses from ``asn`` to the
        origin, following each AS's selected route (data follows control).
        """
        chain = [asn]
        current = asn
        for _ in range(max_hops):
            route = self.route(current)
            if route is None:
                return chain  # blackhole: chain ends before an origin
            if route.via is None:
                return chain  # reached an origin
            current = route.via
            chain.append(current)
        return chain

    def exports_to(self, exporter: int, importer: int) -> Optional[ASRoute]:
        """What ``exporter`` advertises to neighbor ``importer`` post-
        convergence (None when policy forbids export or there is no route).

        This is how a PEERING mux's Adj-RIB-In from each peer is derived.
        """
        route = self.route(exporter)
        if route is None:
            return None
        graph = self._graph
        if importer not in graph.neighbors(exporter):
            return None
        exporting_to_customer = importer in graph.customers(exporter)
        if route.kind in (RouteKind.PEER, RouteKind.PROVIDER) and not exporting_to_customer:
            return None
        if importer in route.path:
            return None  # receiver would reject on loop detection anyway
        return ASRoute(
            kind=route.kind, path=(exporter,) + route.path, via=exporter
        )


def propagate(
    graph: ASGraph,
    announcement: Announcement,
    security: Optional["CompiledSecurity"] = None,
) -> RoutingOutcome:
    """Compute the converged routes for ``announcement`` on ``graph``.

    ``security`` applies per-AS import filters (ROV drop-invalid,
    Peerlock) at every acceptance point; a ``SecurityPolicy`` is compiled
    against the announcement automatically.
    """
    if security is not None and hasattr(security, "compile_for"):
        security = security.compile_for(announcement)  # type: ignore[attr-defined]
    if security is not None and not security.active:
        security = None
    selected: Dict[int, ASRoute] = {}

    # Origins select their own announcement.
    for spec in announcement.origins:
        graph.get(spec.asn)
        selected[spec.asn] = ASRoute(kind=RouteKind.ORIGIN, path=(), via=None)

    def origin_export_ok(spec: OriginSpec, neighbor: int) -> bool:
        return spec.announce_to is None or neighbor in spec.announce_to

    # ---- Phase 1: customer routes climb provider edges -----------------------
    # Heap entries: (path_len, via_asn, target_asn, path).  Pop order gives
    # shortest path first, then lowest via ASN — the tie-break rule.
    up_heap: List[Tuple[int, int, int, Tuple[int, ...]]] = []
    for spec in announcement.origins:
        path = spec.export_path()
        for provider in graph.sorted_providers(spec.asn):
            if origin_export_ok(spec, provider) and provider not in path:
                heapq.heappush(up_heap, (len(path), spec.asn, provider, path))
    up_routes: Dict[int, ASRoute] = {}
    while up_heap:
        length, via, target, path = heapq.heappop(up_heap)
        if target in up_routes or target in selected:
            continue
        if security is not None and security.rejects(target, path, True):
            continue  # filtered; a worse candidate may still fill the slot
        route = ASRoute(kind=RouteKind.CUSTOMER, path=path, via=via)
        up_routes[target] = route
        new_path = (target,) + path
        for provider in graph.sorted_providers(target):
            if provider not in new_path and provider not in up_routes and provider not in selected:
                heapq.heappush(up_heap, (len(new_path), target, provider, new_path))
    selected.update(up_routes)

    # ---- Phase 2: one hop across peer edges ------------------------------------
    peer_routes: Dict[int, ASRoute] = {}
    exporters = sorted(selected)  # origins + customer-route holders
    for exporter in exporters:
        route = selected[exporter]
        if route.kind is RouteKind.ORIGIN:
            specs = [s for s in announcement.origins if s.asn == exporter]
            base_paths = {
                peer: spec.export_path()
                for spec in specs
                for peer in graph.peers(exporter)
                if origin_export_ok(spec, peer)
            }
        else:
            base_paths = {
                peer: (exporter,) + route.path for peer in graph.peers(exporter)
            }
        for peer in sorted(base_paths):
            path = base_paths[peer]
            if peer in selected or peer in path:
                continue
            if security is not None and security.rejects(peer, path, False):
                continue
            candidate = ASRoute(kind=RouteKind.PEER, path=path, via=exporter)
            incumbent = peer_routes.get(peer)
            if incumbent is None or (candidate.length, candidate.via) < (
                incumbent.length,
                incumbent.via,
            ):
                peer_routes[peer] = candidate
    selected.update(peer_routes)

    # ---- Phase 3: routes descend provider->customer edges -----------------------
    down_heap: List[Tuple[int, int, int, Tuple[int, ...]]] = []
    for exporter in sorted(selected):
        route = selected[exporter]
        if route.kind is RouteKind.ORIGIN:
            specs = [s for s in announcement.origins if s.asn == exporter]
            for spec in specs:
                path = spec.export_path()
                for customer in graph.sorted_customers(exporter):
                    if origin_export_ok(spec, customer) and customer not in path:
                        heapq.heappush(down_heap, (len(path), exporter, customer, path))
        else:
            path = (exporter,) + route.path
            for customer in graph.sorted_customers(exporter):
                if customer not in selected and customer not in path:
                    heapq.heappush(down_heap, (len(path), exporter, customer, path))
    down_routes: Dict[int, ASRoute] = {}
    while down_heap:
        length, via, target, path = heapq.heappop(down_heap)
        if target in selected or target in down_routes:
            continue
        if security is not None and security.rejects(target, path, False):
            continue
        route = ASRoute(kind=RouteKind.PROVIDER, path=path, via=via)
        down_routes[target] = route
        new_path = (target,) + path
        for customer in graph.sorted_customers(target):
            if (
                customer not in selected
                and customer not in down_routes
                and customer not in new_path
            ):
                heapq.heappush(down_heap, (len(new_path), target, customer, new_path))
    selected.update(down_routes)

    return RoutingOutcome(graph, selected)


def propagate_sequence(
    graph: ASGraph,
    announcements: Sequence[Announcement],
    security: Optional["CompiledSecurity"] = None,
) -> List[RoutingOutcome]:
    """Fully re-converge each announcement in order (reference semantics).

    This is the ground truth the incremental engine
    (:meth:`repro.inet.engine.PropagationEngine.propagate_delta`) is
    property-tested against: a steering sweep is a *sequence* of
    announcements, and the incremental path must produce route-for-route
    identical outcomes to running :func:`propagate` from scratch at every
    step.  ``security`` may be a ``SecurityPolicy`` (re-compiled per
    announcement, matching how the engine keys its cache) or an already
    compiled filter applied as-is.
    """
    outcomes: List[RoutingOutcome] = []
    for announcement in announcements:
        outcomes.append(propagate(graph, announcement, security=security))
    return outcomes


def resolve_lpm(
    outcomes: Mapping[Prefix, RoutingOutcome],
    asn: int,
    target: Union[IPAddress, Prefix],
) -> Optional[Tuple[Prefix, ASRoute]]:
    """Longest-prefix-match forwarding decision for one AS across several
    converged announcements.

    Among the announced prefixes that contain ``target`` and for which
    ``asn`` holds a route, the most specific wins — the data-plane rule
    that makes a sub-prefix hijack effective even against ASes that still
    hold the covering legitimate route.  Returns ``(prefix, route)`` or
    None when nothing covers the target at this AS.
    """
    best: Optional[Tuple[Prefix, ASRoute]] = None
    for prefix, outcome in outcomes.items():
        if not prefix.contains(target):
            continue
        route = outcome.route(asn)
        if route is None:
            continue
        if best is None or prefix.length > best[0].length:
            best = (prefix, route)
    return best
