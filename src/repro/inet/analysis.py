"""Connectivity analysis over the AS graph — the §4.1 measurements.

The key identity: under Gao–Rexford export rules, the routes an AS *X*
advertises to a settlement-free peer are exactly its own prefixes plus
its customer-learned routes, i.e. the prefixes originated inside X's
customer cone.  That makes peer-route reachability computable directly
from cones without propagating every prefix:

    reachable-via-peers(M) = union of customer_cone(X) for X in peers(M)

which is how ``bench_amsix_reach`` counts "peer routes to 131K prefixes,
a quarter of the Internet" and how per-peer export-table sizes
("only 5 peers give us more than 10K routes") are derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .topology import ASGraph, ASNode

__all__ = [
    "PeerReachability",
    "peer_reachability",
    "peer_export_sizes",
    "country_coverage",
    "top_cone_overlap",
]


@dataclass
class PeerReachability:
    """Everything §4.1 reports about what peering buys an AS."""

    asn: int
    peer_count: int
    reachable_asns: Set[int]
    reachable_prefixes: int
    total_prefixes: int
    per_peer_prefixes: Dict[int, int]

    @property
    def prefix_fraction(self) -> float:
        return self.reachable_prefixes / self.total_prefixes if self.total_prefixes else 0.0


def peer_reachability(graph: ASGraph, asn: int) -> PeerReachability:
    """Compute what ``asn`` can reach via peer routes alone (no transit).

    "Reachable" means a peer exports a route for it: the destination AS is
    in some peer's customer cone (or is the peer itself).
    """
    peers = sorted(graph.peers(asn))
    reachable: Set[int] = set()
    per_peer: Dict[int, int] = {}
    cone_cache: Dict[int, Set[int]] = {}
    for peer in peers:
        cone = cone_cache.get(peer)
        if cone is None:
            cone = graph.customer_cone(peer)
            cone_cache[peer] = cone
        per_peer[peer] = sum(graph.get(member).prefix_count for member in cone)
        reachable |= cone
    reachable.discard(asn)
    reachable_prefixes = sum(graph.get(member).prefix_count for member in reachable)
    total = sum(node.prefix_count for node in graph.nodes())
    return PeerReachability(
        asn=asn,
        peer_count=len(peers),
        reachable_asns=reachable,
        reachable_prefixes=reachable_prefixes,
        total_prefixes=total,
        per_peer_prefixes=per_peer,
    )


def peer_export_sizes(graph: ASGraph, asn: int) -> List[Tuple[int, int]]:
    """(peer, #prefixes that peer exports to us), largest first.

    Reproduces the §4.2 aside: "only our 5 largest peers give us more than
    10K routes, and 307 give us fewer than 100 routes."
    """
    reach = peer_reachability(graph, asn)
    return sorted(reach.per_peer_prefixes.items(), key=lambda kv: (-kv[1], kv[0]))


def country_coverage(graph: ASGraph, asns: Set[int]) -> Set[str]:
    """Countries spanned by a set of ASes ("peers based in 59 countries")."""
    return {graph.get(asn).country for asn in asns}


def top_cone_overlap(
    graph: ASGraph, asns: Set[int], cutoffs: Tuple[int, ...] = (50, 100)
) -> Dict[int, int]:
    """How many of the top-K ASes (by customer cone) appear in ``asns``.

    Reproduces "we peer with at least 13 of the 50 largest ASes and 27 of
    the largest 100, as ranked by the size of their customer cones."
    """
    ranked = [asn for asn, _ in graph.rank_by_cone()]
    return {
        cutoff: len(set(ranked[:cutoff]) & asns)
        for cutoff in cutoffs
    }
