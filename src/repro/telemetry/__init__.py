"""repro.telemetry — observability for the PEERING reproduction.

The paper's testbed is *operated*: its safety story (§4) depends on the
operators watching what every experiment announces, where it propagates,
and why filters fired.  This package is that watching apparatus:

* :mod:`~repro.telemetry.metrics` — the :class:`MetricsRegistry` every
  subsystem registers counters/gauges/histograms into, with
  Prometheus-style text export and snapshot/delta views;
* :mod:`~repro.telemetry.tracing` — deterministic :class:`Tracer`/
  :class:`Span` threading causal context through the control path
  (client op → mux → safety check → propagation → outcome);
* :mod:`~repro.telemetry.routemon` — the BMP-inspired
  :class:`RouteMonitor` streaming per-peer pre/post-policy route
  monitoring messages and keeping monitored RIBs (MRT-exportable);
* :mod:`~repro.telemetry.lookingglass` — the :class:`LookingGlass`
  query service (route / AS-path / community lookups per mux);
* :mod:`~repro.telemetry.collector` — the :class:`Collector` that
  ``testbed.observe()`` installs, tying all of the above together.

Import discipline: :mod:`repro.core` and :mod:`repro.inet` import this
package, so nothing here may import them at runtime (``TYPE_CHECKING``
annotations only; severity and spec objects are duck-typed).
"""

from .collector import Collector
from .lookingglass import LookingGlass
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from .routemon import BMPKind, MonitoredRib, RouteMonitor, RouteMonitorMessage
from .tracing import Span, SpanContext, Tracer, maybe_span

__all__ = [
    "Collector",
    "LookingGlass",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "BMPKind",
    "MonitoredRib",
    "RouteMonitor",
    "RouteMonitorMessage",
    "Span",
    "SpanContext",
    "Tracer",
    "maybe_span",
]
