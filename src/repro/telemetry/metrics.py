"""Metrics: counters, gauges, and histograms with label sets.

:class:`MetricsRegistry` is the testbed's single source of truth for
operational statistics.  Every subsystem (propagation engine, muxes,
safety enforcers, the supervision layer, fault injectors) registers
metric *families* here; a family plus one concrete label-value set yields
a *child*, the object call sites actually increment.  Children are plain
slotted objects whose hot operation is one float addition, so
instrumentation stays cheap enough for the propagation benchmarks.

Export follows the Prometheus text exposition format closely enough for
standard tooling to scrape a dump::

    # HELP peering_announcements_total Announcements accepted per mux
    # TYPE peering_announcements_total counter
    peering_announcements_total{server="amsterdam01"} 12

:meth:`MetricsRegistry.snapshot` flattens the registry into a
``{sample-name: value}`` dict and :meth:`MetricsRegistry.delta` diffs two
snapshots — the benchmark harness and the CI smoke job use these to
export before/after views of a run.

Naming scheme (DESIGN.md §10): ``peering_<subsystem>_<noun>[_<unit>]``
with ``_total`` on counters; label names are lowercase identifiers.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "MetricError",
    "CounterChild",
    "GaugeChild",
    "HistogramChild",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

LabelValues = Tuple[str, ...]

DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


class MetricError(Exception):
    """Bad metric registration or use (type/label mismatch, negative inc)."""


class CounterChild:
    """One monotonically increasing sample."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(f"counters only go up (inc by {amount})")
        self.value += amount


class GaugeChild:
    """One sample that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class HistogramChild:
    """One cumulative histogram (bucket counts + sum + count)."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts: List[int] = [0] * (len(buckets) + 1)  # +1 for +Inf
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper-bound, cumulative count)`` pairs, +Inf last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _sample_name(name: str, labelnames: Tuple[str, ...], values: LabelValues) -> str:
    if not labelnames:
        return name
    inner = ",".join(
        f'{key}="{_escape(value)}"' for key, value in zip(labelnames, values)
    )
    return f"{name}{{{inner}}}"


class _Family:
    """One named metric family: fixed label names, many children."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Tuple[str, ...]) -> None:
        self.name = name
        self.help = help
        self.labelnames = labelnames

    def _values(self, args: Tuple[object, ...], kwargs: Dict[str, object]) -> LabelValues:
        if kwargs:
            if args:
                raise MetricError("pass label values positionally or by name, not both")
            try:
                args = tuple(kwargs[key] for key in self.labelnames)
            except KeyError as missing:
                raise MetricError(
                    f"{self.name} labels are {self.labelnames}, missing {missing}"
                ) from None
            if len(kwargs) != len(self.labelnames):
                raise MetricError(
                    f"{self.name} labels are {self.labelnames}, got {sorted(kwargs)}"
                )
        if len(args) != len(self.labelnames):
            raise MetricError(
                f"{self.name} takes {len(self.labelnames)} label values, got {len(args)}"
            )
        return tuple(str(value) for value in args)


class Counter(_Family):
    kind = "counter"

    def __init__(self, name: str, help: str, labelnames: Tuple[str, ...]) -> None:
        super().__init__(name, help, labelnames)
        self._children: Dict[LabelValues, CounterChild] = {}
        if not labelnames:
            self._children[()] = CounterChild()

    def labels(self, *args: object, **kwargs: object) -> CounterChild:
        key = self._values(args, kwargs)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = CounterChild()
        return child

    def inc(self, amount: float = 1.0) -> None:
        """Label-less convenience: increment the default child."""
        self.labels().inc(amount)

    @property
    def value(self) -> float:
        """Sum over all children (the family total)."""
        return sum(child.value for child in self._children.values())

    def samples(self) -> Iterator[Tuple[str, float]]:
        for key in sorted(self._children):
            yield _sample_name(self.name, self.labelnames, key), self._children[key].value


class Gauge(_Family):
    kind = "gauge"

    def __init__(self, name: str, help: str, labelnames: Tuple[str, ...]) -> None:
        super().__init__(name, help, labelnames)
        self._children: Dict[LabelValues, GaugeChild] = {}
        if not labelnames:
            self._children[()] = GaugeChild()

    def labels(self, *args: object, **kwargs: object) -> GaugeChild:
        key = self._values(args, kwargs)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = GaugeChild()
        return child

    def set(self, value: float) -> None:
        self.labels().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    @property
    def value(self) -> float:
        return sum(child.value for child in self._children.values())

    def samples(self) -> Iterator[Tuple[str, float]]:
        for key in sorted(self._children):
            yield _sample_name(self.name, self.labelnames, key), self._children[key].value


class Histogram(_Family):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Tuple[str, ...],
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        if list(buckets) != sorted(buckets) or not buckets:
            raise MetricError(f"{name}: buckets must be non-empty and ascending")
        self.buckets = tuple(float(bound) for bound in buckets)
        self._children: Dict[LabelValues, HistogramChild] = {}
        if not labelnames:
            self._children[()] = HistogramChild(self.buckets)

    def labels(self, *args: object, **kwargs: object) -> HistogramChild:
        key = self._values(args, kwargs)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = HistogramChild(self.buckets)
        return child

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def samples(self) -> Iterator[Tuple[str, float]]:
        for key in sorted(self._children):
            child = self._children[key]
            for bound, cumulative in child.cumulative():
                le = "+Inf" if bound == float("inf") else format(bound, "g")
                yield (
                    _sample_name(
                        f"{self.name}_bucket", self.labelnames + ("le",), key + (le,)
                    ),
                    float(cumulative),
                )
            yield _sample_name(f"{self.name}_sum", self.labelnames, key), child.sum
            yield _sample_name(f"{self.name}_count", self.labelnames, key), float(child.count)


class MetricsRegistry:
    """Get-or-create registry of metric families.

    Registration is idempotent: asking for an existing name returns the
    existing family (so every mux can register the shared
    ``peering_safety_decisions_total`` family and pick its own label
    child), but re-registering with a different type or label set is an
    error — that would silently fork the single source of truth.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    def _register(self, family: _Family) -> _Family:
        existing = self._families.get(family.name)
        if existing is None:
            self._families[family.name] = family
            return family
        if existing.kind != family.kind or existing.labelnames != family.labelnames:
            raise MetricError(
                f"{family.name} already registered as {existing.kind}"
                f"{existing.labelnames}, not {family.kind}{family.labelnames}"
            )
        return existing

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        family = self._register(Counter(name, help, tuple(labelnames)))
        assert isinstance(family, Counter)
        return family

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        family = self._register(Gauge(name, help, tuple(labelnames)))
        assert isinstance(family, Gauge)
        return family

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        family = self._register(Histogram(name, help, tuple(labelnames), buckets))
        assert isinstance(family, Histogram)
        return family

    def get(self, name: str) -> Optional[_Family]:
        return self._families.get(name)

    def families(self) -> List[_Family]:
        return [self._families[name] for name in sorted(self._families)]

    def __len__(self) -> int:
        return len(self._families)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    # -- export ---------------------------------------------------------------

    def export_text(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        lines: List[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {_escape(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for sample, value in family.samples():  # type: ignore[attr-defined]
                lines.append(f"{sample} {format(value, 'g')}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{sample-name: value}`` view of every sample."""
        out: Dict[str, float] = {}
        for family in self.families():
            for sample, value in family.samples():  # type: ignore[attr-defined]
                out[sample] = value
        return out

    def delta(self, since: Dict[str, float]) -> Dict[str, float]:
        """Samples that moved since a previous :meth:`snapshot`."""
        current = self.snapshot()
        moved: Dict[str, float] = {}
        for sample, value in current.items():
            change = value - since.get(sample, 0.0)
            if change != 0.0:
                moved[sample] = change
        return moved
