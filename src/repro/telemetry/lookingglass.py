"""Looking glass: the operator's per-mux route query service.

Real networks run looking glasses so outsiders can ask "what route do
you have for prefix P?"; PEERING's operators need the same view over
their own testbed (§4: watching what every experiment announces and
where it propagates).  :class:`LookingGlass` answers three families of
questions:

* **substrate**: which route each AS on the simulated Internet selected
  for a prefix (straight from the converged
  :class:`~repro.inet.routing.RoutingOutcome` — so looking-glass answers
  are route-for-route identical to what propagation computed);
* **origination**: which muxes announce the prefix, for which client,
  with what steering spec (the announcement registry view);
* **monitoring**: the BMP-derived post-policy RIB and community encoding
  per mux, when a :class:`~repro.telemetry.routemon.RouteMonitor` is
  wired.

Runtime imports stay inside :mod:`repro.telemetry` (core types appear
only in annotations) so the package can load while core is importing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..net.addr import Prefix
from .routemon import RouteMonitor, SpecLike

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..anycast.service import AnycastService
    from ..core.testbed import Testbed
    from ..inet.routing import ASRoute
    from ..secroute.flowspec import FlowSpecDistributor, FlowSpecRule
    from ..secroute.rpki import RoaRegistry, ValidationState

__all__ = ["LookingGlass"]


class LookingGlass:
    """Query service over the testbed's converged and monitored state.

    ``roas`` (or the testbed's own adopted registry) adds the RPKI view:
    per-route RFC 6811 validation state, rendered alongside each vantage
    line — what a real looking glass shows as ``RPKI: valid``.

    ``flowspec`` (a :class:`~repro.secroute.flowspec.FlowSpecDistributor`)
    adds the traffic-filtering view: installed/rejected/evicted rule
    counters, quarantined originators, matched traffic volume, and the
    §5.1-ordered rule table at any vantage AS.

    ``anycast`` (an :class:`~repro.anycast.service.AnycastService`) adds
    the anycast view: per-site liveness and steering state, the last
    measured per-site volume shares, and the last rebalance summary."""

    def __init__(
        self,
        testbed: "Testbed",
        monitor: Optional[RouteMonitor] = None,
        roas: Optional["RoaRegistry"] = None,
        flowspec: Optional["FlowSpecDistributor"] = None,
        anycast: Optional["AnycastService"] = None,
    ) -> None:
        self.testbed = testbed
        self.monitor = monitor
        self.roas = roas
        self.flowspec = flowspec
        self.anycast = anycast

    def _registry(self) -> Optional["RoaRegistry"]:
        if self.roas is not None:
            return self.roas
        return getattr(self.testbed, "roas", None)

    # -- substrate view (converged routes) ------------------------------------

    def routes(self, prefix: Prefix) -> Dict[int, "ASRoute"]:
        """Every AS's selected route for ``prefix`` (empty if unannounced)."""
        outcome = self.testbed.outcome_for(prefix)
        if outcome is None:
            return {}
        return dict(outcome.items())

    def propagation_savings(self) -> Dict[str, object]:
        """How much work incremental convergence saved: delta runs by
        regime (noop/shift/cone vs fallback/full), the fraction answered
        incrementally, the total AS slots reused from previous route
        tables instead of recomputed, and — for parallel sweeps — the
        worker-chain counts, per-regime splits inside the pool, and any
        pool degradations (fork→spawn, pool→serial)."""
        stats = self.testbed.propagation.stats()
        delta_obj = stats.get("delta")
        delta: Dict[str, int] = (
            {str(k): int(v) for k, v in delta_obj.items()}
            if isinstance(delta_obj, dict) else {}
        )
        saved_obj = stats.get("delta_saved_slots", 0)
        incremental = sum(
            delta.get(mode, 0) for mode in ("noop", "shift", "cone")
        )
        total = sum(delta.values())
        par_obj = stats.get("parallel")
        parallel: Dict[str, object] = {}
        if isinstance(par_obj, dict):
            par_delta_obj = par_obj.get("delta")
            par_delta: Dict[str, int] = (
                {str(k): int(v) for k, v in par_delta_obj.items()}
                if isinstance(par_delta_obj, dict) else {}
            )
            par_incremental = sum(
                par_delta.get(mode, 0) for mode in ("noop", "shift", "cone")
            )
            par_total = sum(par_delta.values())
            fallbacks = par_obj.get("pool_fallbacks")
            parallel = {
                "chains": int(par_obj.get("chains", 0) or 0),
                "delta_runs": par_delta,
                "incremental_fraction": (
                    (par_incremental / par_total) if par_total else 0.0
                ),
                "pool_fallbacks": (
                    {str(k): int(v) for k, v in fallbacks.items()}
                    if isinstance(fallbacks, dict) else {}
                ),
            }
        return {
            "delta_runs": delta,
            "incremental_fraction": (incremental / total) if total else 0.0,
            "slots_reused": int(saved_obj) if isinstance(saved_obj, int) else 0,
            "parallel": parallel,
        }

    def route(self, prefix: Prefix, vantage: int) -> Optional["ASRoute"]:
        """The route one vantage AS selected, or None if it has none."""
        outcome = self.testbed.outcome_for(prefix)
        return outcome.route(vantage) if outcome is not None else None

    def as_path(self, prefix: Prefix, vantage: int) -> Optional[Tuple[int, ...]]:
        """The AS path from one vantage toward ``prefix``."""
        outcome = self.testbed.outcome_for(prefix)
        return outcome.as_path(vantage) if outcome is not None else None

    def visibility(self, prefix: Prefix) -> int:
        """How many ASes currently hold a route for ``prefix``."""
        outcome = self.testbed.outcome_for(prefix)
        return len(outcome) if outcome is not None else 0

    # -- RPKI view (origin validation) -----------------------------------------

    def validation_state(
        self, prefix: Prefix, vantage: int
    ) -> Optional["ValidationState"]:
        """RFC 6811 state of the route ``vantage`` selected for
        ``prefix``: the ROA registry's verdict on (prefix, path origin).
        None when no registry is wired or the vantage has no route."""
        registry = self._registry()
        if registry is None:
            return None
        route = self.route(prefix, vantage)
        if route is None:
            return None
        origin = route.path[-1] if route.path else self.testbed.asn
        return registry.validate(prefix, origin)

    # -- FlowSpec view (traffic filtering) -------------------------------------

    def flowspec_stats(self) -> Dict[str, object]:
        """Rule lifecycle counters and current install state from the
        wired distributor (installed / evicted / rejected-by-reason /
        quarantines, deployer count, per-AS max vs limit).  Empty dict
        when no FlowSpec distributor is wired."""
        if self.flowspec is None:
            return {}
        return self.flowspec.stats()

    def flowspec_rules(self, vantage: int) -> Tuple["FlowSpecRule", ...]:
        """The FlowSpec rules installed at ``vantage``, in §5.1
        enforcement order (empty without a wired distributor)."""
        if self.flowspec is None:
            return ()
        return self.flowspec.rules_at(vantage)

    # -- anycast view (catchment + steering) -----------------------------------

    def anycast_stats(self) -> Dict[str, object]:
        """The wired anycast service's state: per-site steering and
        liveness, last measured volume shares, and the last rebalance
        summary.  Empty dict when no service is wired."""
        service = self.anycast
        if service is None:
            return {}
        return {
            "asn": service.asn,
            "sites": list(service.active_site_names()),
            "down": list(service.down_sites()),
            "steering": {
                name: service.steering_of(name).describe()
                for name in service.active_site_names()
            },
            "shares": dict(service.last_shares),
            "steering_changes": service.steering_changes,
            "last_rebalance": service.last_rebalance,
        }

    # -- origination view (announcement registry) -----------------------------

    def origins(self, prefix: Prefix) -> Dict[str, Tuple[str, SpecLike]]:
        """``{mux: (client, spec)}`` — who announces ``prefix`` and how."""
        holders = self.testbed._announced.get(prefix, {})
        return {server: (client, spec) for server, (client, spec) in holders.items()}

    def announcing_servers(self, prefix: Prefix) -> List[str]:
        return sorted(self.origins(prefix))

    def neighbors(self, server: str) -> List[int]:
        """The peer/upstream ASNs of one mux."""
        return sorted(self.testbed.servers[server].neighbor_asns)

    # -- monitoring view (BMP post-policy RIB) --------------------------------

    def communities(self, prefix: Prefix) -> Dict[str, Tuple[str, ...]]:
        """Per-mux steering communities on the monitored post-policy route
        (``PEERING:peer`` selects the peers the prefix is announced to).
        Empty without a wired RouteMonitor."""
        if self.monitor is None:
            return {}
        out: Dict[str, Tuple[str, ...]] = {}
        for server in self.monitor.servers():
            for route in self.monitor.rib_routes(server):
                if route.prefix == prefix:
                    out[server] = tuple(
                        str(c) for c in sorted(route.attributes.communities)
                    )
        return out

    def monitored_prefixes(self, server: str) -> List[Prefix]:
        if self.monitor is None:
            return []
        rib = self.monitor.rib(server)
        return rib.prefixes() if rib is not None else []

    # -- rendering ------------------------------------------------------------

    def render(self, prefix: Prefix, vantages: Optional[List[int]] = None) -> str:
        """A human-readable looking-glass report for one prefix."""
        lines = [f"looking glass: {prefix}"]
        origins = self.origins(prefix)
        for server in sorted(origins):
            client, spec = origins[server]
            steering = "all peers" if spec.peers is None else f"peers {sorted(spec.peers)}"
            extra = ""
            if spec.prepend:
                extra += f" prepend={spec.prepend}"
            if spec.poison:
                extra += f" poison={sorted(spec.poison)}"
            lines.append(f"  origin {server} client={client} {steering}{extra}")
        routes = self.routes(prefix)
        lines.append(f"  visible at {len(routes)} ASes")
        for vantage in vantages or []:
            path = self.as_path(prefix, vantage)
            shown = " ".join(str(a) for a in path) if path is not None else "(no route)"
            state = self.validation_state(prefix, vantage)
            rpki = "" if state is None else f"  [RPKI: {state.value}]"
            lines.append(f"  AS{vantage}: {shown}{rpki}")
        if self.flowspec is not None:
            lines.append(self.flowspec.render(vantages))
        if self.anycast is not None:
            lines.extend(self.anycast.describe())
        return "\n".join(lines)
