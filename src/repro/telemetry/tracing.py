"""Structured tracing for the testbed control path.

A single client operation travels through several layers — client →
mux → safety check → (deferred) propagation → outcome install — and the
interesting failures live in the joints between them.  :class:`Tracer`
threads a :class:`SpanContext` through that path so one announcement
yields one causally-linked span tree.

The design mirrors OpenTelemetry's vocabulary (trace id, span id, parent
link, attributes, events) but is deliberately tiny and deterministic:

* ids come from monotonic counters, not randomness, so two same-seed
  runs produce byte-identical traces;
* the clock is injectable — tests pass ``lambda: engine.now`` so span
  timestamps ride the simulated clock and ordering assertions are exact;
* the simulator is single-threaded, so the "current span" is a plain
  stack rather than a context-local.

Deferred work (the testbed marks prefixes dirty and converges later) is
linked by capturing the current :class:`SpanContext` at mark time and
passing it back as ``parent=`` at flush time — a follows-from link in
OpenTelemetry terms, rendered here as an ordinary parent edge.
"""

from __future__ import annotations

import time as _time
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple, Union

__all__ = ["SpanContext", "Span", "Tracer", "maybe_span"]


class SpanContext(NamedTuple):
    """Identity of one span: which trace it belongs to, and which span it is.

    A NamedTuple rather than a frozen dataclass: contexts are created on
    every span open (hot path) and a tuple is the cheapest immutable
    carrier."""

    trace_id: int
    span_id: int


class Span:
    """One timed operation within a trace.

    A hand-rolled slotted class rather than a dataclass: spans open on
    every instrumented control operation and their construction cost is
    charged against the telemetry overhead gate.  Identity equality;
    doubles as its own context manager (``__exit__`` ends the span on
    the tracer that opened it), so the traced path allocates exactly one
    object per span.
    """

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "start", "end",
        "attributes", "events", "_tracer",
    )

    def __init__(
        self,
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int] = None,
        start: float = 0.0,
        end: Optional[float] = None,
        attributes: Optional[Dict[str, object]] = None,
        events: Optional[List[Tuple[float, str]]] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end = end
        self.attributes: Dict[str, object] = (
            attributes if attributes is not None else {}
        )
        self.events: List[Tuple[float, str]] = (
            events if events is not None else []
        )
        self._tracer: Optional["Tracer"] = None

    @property
    def context(self) -> SpanContext:
        """Built on demand — ids live as plain ints on the span so the
        hot open path skips one tuple construction."""
        return SpanContext(self.trace_id, self.span_id)

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def set(self, **attributes: object) -> "Span":
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: object) -> bool:
        tracer = self._tracer
        if tracer is not None:  # inlined end_span: this is the hot exit
            self.end = tracer.clock()
            tracer.finished.append(self)
            stack = tracer._stack
            if stack and stack[-1] is self:
                stack.pop()
            else:  # pragma: no cover - out-of-order exit (rare)
                for i in range(len(stack) - 1, -1, -1):
                    if stack[i] is self:
                        del stack[i]
                        break
        return False

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in sorted(self.attributes.items()))
        return f"{self.name} [{self.start:.3f}..{self.end if self.end is not None else '...'}] {extra}".rstrip()


class Tracer:
    """Creates spans with deterministic ids and tracks the active one.

    ``clock`` defaults to wall time; deterministic runs pass the engine
    clock.  Finished spans accumulate in :attr:`finished` (append order =
    finish order); :meth:`spans_of` / :meth:`tree` rebuild per-trace
    structure for assertions and timeline rendering.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.clock: Callable[[], float] = clock or _time.monotonic
        self.finished: List[Span] = []
        self._stack: List[Span] = []
        self._next_trace = 1
        self._next_span = 1

    # -- span lifecycle -------------------------------------------------------

    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def current_context(self) -> Optional[SpanContext]:
        span = self.current()
        return span.context if span else None

    def start_span(
        self,
        name: str,
        parent: Optional[SpanContext] = None,
        **attributes: object,
    ) -> Span:
        """Open a span.  ``parent`` defaults to the currently-active span;
        pass an explicitly captured context to link deferred work."""
        return self._start(name, parent, attributes)

    def _start(
        self,
        name: str,
        parent: Optional[SpanContext],
        attributes: Dict[str, object],
    ) -> Span:
        """Hot-path core of :meth:`start_span`: takes the attribute dict
        by reference (no kwargs repacking) and inlines the parent lookup."""
        stack = self._stack
        parent_id: Optional[int]
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        elif stack:
            top = stack[-1]
            trace_id = top.trace_id
            parent_id = top.span_id
        else:
            trace_id = self._next_trace
            self._next_trace += 1
            parent_id = None
        span = Span(
            name,
            trace_id,
            self._next_span,
            parent_id,
            self.clock(),
            None,
            attributes,
        )
        span._tracer = self
        self._next_span += 1
        stack.append(span)
        return span

    def end_span(self, span: Span) -> Span:
        span.end = self.clock()
        self.finished.append(span)
        stack = self._stack
        if stack and stack[-1] is span:
            stack.pop()
        else:  # out-of-order end (rare): remove by identity
            for i in range(len(stack) - 1, -1, -1):
                if stack[i] is span:
                    del stack[i]
                    break
        return span

    def span(
        self,
        name: str,
        parent: Optional[SpanContext] = None,
        **attributes: object,
    ) -> Span:
        """Context manager opening (and on exit ending) one span."""
        return self._start(name, parent, attributes)

    def event(self, name: str) -> None:
        """Stamp a point event onto the active span (no-op without one)."""
        span = self.current()
        if span is not None:
            span.events.append((self.clock(), name))

    # -- queries --------------------------------------------------------------

    def spans_of(self, trace_id: int) -> List[Span]:
        """Finished spans of one trace, in start order (ties: span id)."""
        return sorted(
            (s for s in self.finished if s.trace_id == trace_id),
            key=lambda s: (s.start, s.span_id),
        )

    def trace_ids(self) -> List[int]:
        seen: List[int] = []
        for span in self.finished:
            if span.trace_id not in seen:
                seen.append(span.trace_id)
        return seen

    def find(self, name: str) -> List[Span]:
        return [s for s in self.finished if s.name == name]

    def children_of(self, span: Span) -> List[Span]:
        return [
            s
            for s in self.spans_of(span.trace_id)
            if s.parent_id == span.span_id
        ]

    def tree(self, trace_id: int) -> List[Tuple[int, Span]]:
        """``(depth, span)`` pairs in depth-first start order — the render
        the example scripts print and the tests assert over."""
        spans = self.spans_of(trace_id)
        by_parent: Dict[Optional[int], List[Span]] = {}
        for span in spans:
            by_parent.setdefault(span.parent_id, []).append(span)
        known = {span.span_id for span in spans}
        out: List[Tuple[int, Span]] = []

        def walk(parent_id: Optional[int], depth: int) -> None:
            for span in by_parent.get(parent_id, []):
                out.append((depth, span))
                walk(span.span_id, depth + 1)

        walk(None, 0)
        # Spans whose parent never finished (shouldn't happen, but don't
        # silently drop data if it does) surface as roots.
        for span in spans:
            if span.parent_id is not None and span.parent_id not in known:
                out.append((0, span))
        return out

    def render(self, trace_id: int) -> str:
        lines = []
        for depth, span in self.tree(trace_id):
            duration = span.duration
            took = f" ({duration * 1000:.3f}ms)" if duration is not None else ""
            extra = " ".join(f"{k}={v}" for k, v in sorted(span.attributes.items()))
            lines.append(f"{'  ' * depth}{span.name}{took} {extra}".rstrip())
        return "\n".join(lines)


class _NoopSpan:
    """Shared do-nothing context manager for the untraced path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NOOP = _NoopSpan()


def maybe_span(
    tracer: Optional[Tracer],
    name: str,
    parent: Optional[SpanContext] = None,
    **attributes: object,
) -> Union[Span, _NoopSpan]:
    """``tracer.span(...)`` when tracing is on, a no-op when it isn't.

    Instrumented call sites use this so the uninstrumented path costs one
    ``is None`` check and a shared empty context manager.
    """
    if tracer is None:
        return _NOOP
    return tracer._start(name, parent, attributes)
