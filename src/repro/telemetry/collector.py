"""The telemetry collector: one install point for the whole subsystem.

``testbed.observe()`` mirrors ``testbed.supervise()``: it builds a
:class:`Collector`, wires it into the testbed (tracer on the control
path, route monitor on the muxes, an EventBus subscription for the
severity counters), and is idempotent.  After installation:

* every EventBus emission increments ``peering_events_total{kind,severity}``;
* every client operation produces a causally-linked span tree in
  ``collector.tracer`` (ids and timestamps deterministic — the tracer
  rides the simulation clock);
* every mux streams BMP-style messages into ``collector.monitor``;
* :meth:`Collector.timeline` merges events, finished spans, and route
  monitoring messages into one time-ordered operator view, and
  :meth:`Collector.export_metrics` dumps the registry.

Like its siblings, this module must not import :mod:`repro.core` at
runtime (core imports telemetry first); testbed/server objects are typed
under ``TYPE_CHECKING`` only and severity filters are duck-typed on
``.rank``.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, List, Optional, Protocol, Tuple

from ..bgp.session import BGPSession
from .lookingglass import LookingGlass
from .metrics import MetricsRegistry
from .routemon import RouteMonitor
from .tracing import Tracer

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..core.alerts import TestbedEvent
    from ..core.server import PeeringServer
    from ..core.testbed import Testbed

__all__ = ["Collector"]


class SeverityLike(Protocol):
    """Anything with a severity rank (``repro.core.alerts.Severity``)."""

    @property
    def rank(self) -> int: ...


class Collector:
    """Unified observability for one testbed."""

    def __init__(self, testbed: "Testbed") -> None:
        self.testbed = testbed
        self.metrics: MetricsRegistry = testbed.metrics
        # C-level zero-arg closure over the sim clock: spans read it twice
        # per operation, so no Python frame per tick.
        clock = partial(getattr, testbed.engine, "now")
        self.tracer = Tracer(clock=clock)
        self.monitor = RouteMonitor(testbed.asn, clock=clock, metrics=self.metrics)
        self.glass = LookingGlass(testbed, self.monitor)
        self._event_counter = self.metrics.counter(
            "peering_events_total",
            "EventBus emissions by kind and severity",
            ("kind", "severity"),
        )
        self._started = False

    # -- installation ---------------------------------------------------------

    def start(self) -> "Collector":
        """Wire into the testbed (called by ``testbed.observe()``)."""
        if self._started:
            return self
        self._started = True
        self.testbed.telemetry = self
        self.testbed.tracer = self.tracer
        self.testbed.events.subscribe(self._on_event)
        for server in self.testbed.servers.values():
            self.adopt_server(server)
        return self

    def adopt_server(self, server: "PeeringServer") -> None:
        """Start monitoring one mux, including already-connected clients."""
        self.monitor.adopt_mux(server.site.name, server.address)
        for attachment in server._clients.values():
            for peer_asn, session in attachment.sessions.items():
                self.attach_session(
                    server.site.name, attachment.client_id, peer_asn, session
                )
            if attachment.bird_session is not None:
                self.attach_session(
                    server.site.name, attachment.client_id, None,
                    attachment.bird_session,
                )

    def attach_session(
        self,
        server: str,
        client_id: str,
        peer: Optional[int],
        session: BGPSession,
    ) -> None:
        self.monitor.attach_session(server, client_id, peer, session)

    # -- event stream ---------------------------------------------------------

    def _on_event(self, event: "TestbedEvent") -> None:
        severity = event.severity
        self._event_counter.labels(
            event.kind, severity.value if severity is not None else "none"
        ).inc()

    # -- unified views --------------------------------------------------------

    def timeline(
        self, minimum: Optional[SeverityLike] = None
    ) -> List[Tuple[float, str, str]]:
        """Events, finished spans, and route-monitoring messages merged
        into one ``(time, stream, description)`` sequence.

        ``minimum`` filters the *event* stream by severity (spans and
        monitoring messages carry no severity and always appear).
        """
        entries: List[Tuple[float, str, str]] = []
        for event in self.testbed.events.events:
            if minimum is not None:
                severity = event.severity
                if severity is None or severity.rank < minimum.rank:
                    continue
            entries.append((event.time, "event", str(event).strip()))
        for span in self.tracer.finished:
            end = span.end if span.end is not None else span.start
            entries.append((end, "span", str(span)))
        for message in self.monitor.messages:
            entries.append((message.time, "bmp", str(message).strip()))
        entries.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
        return entries

    def export_metrics(self) -> str:
        """The registry in Prometheus text format."""
        return self.metrics.export_text()

    def stats(self) -> dict:
        return {
            "events": len(self.testbed.events),
            "spans": len(self.tracer.finished),
            "bmp_messages": len(self.monitor.messages),
            "monitored_muxes": len(self.monitor.servers()),
            "metric_families": len(self.metrics),
        }
