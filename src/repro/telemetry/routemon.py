"""BMP-inspired route monitoring of the PEERING muxes.

The production testbed's operators watch what every experiment announces
through route-monitoring feeds; RFC 7854 (BMP) is how a real router
exports that view to a monitoring station.  :class:`RouteMonitor` plays
the station: it taps each client-facing :class:`~repro.bgp.session.BGPSession`
for PEER_UP / PEER_DOWN / pre-policy ROUTE_MONITORING messages, and
receives post-policy notifications from the testbed's announcement
registry (the analogue of BMP's Adj-RIB-Out / post-policy monitoring).

* **pre-policy** — exactly what the client said on the wire, before any
  safety filter ran (BMP's L-flag clear).
* **post-policy** — what the mux actually accepted into the substrate
  (only announcements that survived the safety gauntlet appear).

The monitor keeps a per-mux monitored RIB built from the post-policy
stream; :meth:`rib_routes` renders it as :class:`~repro.bgp.rib.Route`
objects (steering communities encoded PEERING-style as ``ASN:peer``) and
:meth:`dump_mrt` exports MRT TABLE_DUMP_V2 snapshots a RouteViews-style
pipeline can ingest.  :class:`~repro.telemetry.lookingglass.LookingGlass`
queries both this RIB and the converged substrate outcomes.

No runtime imports from :mod:`repro.core` (this module is imported while
core is still loading); server/spec objects are duck-typed.
"""

from __future__ import annotations

from enum import Enum
from typing import (
    BinaryIO,
    Callable,
    Dict,
    List,
    NamedTuple,
    Optional,
    Protocol,
    Tuple,
)

from ..bgp.attributes import ASPath, Community, Origin, PathAttributes
from ..bgp.messages import UpdateMessage
from ..bgp.mrt import write_table_dump
from ..bgp.rib import Route
from ..bgp.session import BGPSession
from ..net.addr import IPAddress, Prefix
from .metrics import GaugeChild, MetricsRegistry

__all__ = ["BMPKind", "RouteMonitorMessage", "RouteMonitor", "MonitoredRib"]

MAX_16BIT = 1 << 16


class SpecLike(Protocol):
    """Shape of :class:`repro.core.server.AnnouncementSpec` (duck-typed)."""

    @property
    def peers(self) -> Optional[Tuple[int, ...]]: ...

    @property
    def prepend(self) -> int: ...

    @property
    def poison(self) -> Tuple[int, ...]: ...


class BMPKind(Enum):
    """RFC 7854 message types this monitor emits."""

    ROUTE_MONITORING = "route-monitoring"
    PEER_DOWN = "peer-down"
    PEER_UP = "peer-up"


class RouteMonitorMessage(NamedTuple):
    """One monitoring message: which peer said what, where, when.

    ``pre_policy`` distinguishes the wire view (client update as
    received) from the post-policy view (accepted into the substrate);
    PEER_UP/DOWN messages carry no prefix.  A NamedTuple rather than a
    frozen dataclass: messages are immutable either way, and one is built
    per monitored UPDATE — construction cost counts against the
    telemetry overhead gate.
    """

    kind: BMPKind
    time: float
    server: str
    client_id: str
    peer: Optional[int] = None
    prefix: Optional[Prefix] = None
    pre_policy: bool = True
    withdraw: bool = False
    as_path: Tuple[int, ...] = ()
    communities: Tuple[str, ...] = ()
    reason: str = ""

    def __str__(self) -> str:
        view = "pre" if self.pre_policy else "post"
        what = self.prefix if self.prefix is not None else self.reason
        return (
            f"[{self.time:10.3f}] {self.kind.value:<16} {self.server}/"
            f"{self.client_id} peer={self.peer} {view} {what}"
        ).rstrip()


class _RibEntry(NamedTuple):
    """Post-policy state of one prefix at one mux."""

    client_id: str
    spec: SpecLike
    installed_at: float


class MonitoredRib:
    """The monitored post-policy RIB of one mux."""

    def __init__(self, server: str, address: IPAddress) -> None:
        self.server = server
        self.address = address
        self._entries: Dict[Prefix, _RibEntry] = {}

    def install(self, prefix: Prefix, entry: _RibEntry) -> None:
        self._entries[prefix] = entry

    def remove(self, prefix: Prefix) -> Optional[_RibEntry]:
        return self._entries.pop(prefix, None)

    def get(self, prefix: Prefix) -> Optional[_RibEntry]:
        return self._entries.get(prefix)

    def prefixes(self) -> List[Prefix]:
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._entries


class RouteMonitor:
    """BMP-style monitoring station for every mux in the testbed.

    Wire it to a session with :meth:`attach_session` (installs a tap that
    forwards session events); the testbed forwards post-policy changes
    through :meth:`post_policy_announce` / :meth:`post_policy_withdraw`.
    """

    def __init__(
        self,
        asn: int,
        clock: Callable[[], float],
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.asn = asn
        self.clock = clock
        self.messages: List[RouteMonitorMessage] = []
        self._ribs: Dict[str, MonitoredRib] = {}
        registry = metrics if metrics is not None else MetricsRegistry()
        self._msg_counter = registry.counter(
            "peering_routemon_messages_total",
            "Route monitoring messages by kind and policy view",
            ("kind", "view"),
        )
        self._rib_gauge = registry.gauge(
            "peering_routemon_rib_routes",
            "Monitored post-policy RIB size per mux",
            ("server",),
        )
        # Label children resolved once: the (kind, view) space is closed
        # and muxes register via adopt_mux.  _emit is per-UPDATE hot.
        self._msg_children = {
            (kind, view): self._msg_counter.labels(kind.value, view)
            for kind in BMPKind
            for view in ("pre", "post")
        }
        self._rib_children: Dict[str, GaugeChild] = {}
        # Steering-community strings are pure functions of (our ASN, peer)
        # — memoized, one f-string per peer ever.
        self._community_strs: Dict[int, str] = {}

    # -- mux / session wiring -------------------------------------------------

    def adopt_mux(self, server: str, address: IPAddress) -> MonitoredRib:
        """Start monitoring a mux (idempotent)."""
        rib = self._ribs.get(server)
        if rib is None:
            rib = self._ribs[server] = MonitoredRib(server, address)
            self._rib_children[server] = self._rib_gauge.labels(server)
        return rib

    def attach_session(
        self,
        server: str,
        client_id: str,
        peer: Optional[int],
        session: BGPSession,
    ) -> None:
        """Tap one client-facing session for pre-policy monitoring."""

        def tap(
            sess: BGPSession, event: str, update: Optional[UpdateMessage]
        ) -> None:
            self._session_event(server, client_id, peer, sess, event, update)

        session.taps.append(tap)

    def _session_event(
        self,
        server: str,
        client_id: str,
        peer: Optional[int],
        session: BGPSession,
        event: str,
        update: Optional[UpdateMessage],
    ) -> None:
        now = self.clock()
        if event == "established":
            self._emit(
                RouteMonitorMessage(
                    BMPKind.PEER_UP, now, server, client_id, peer=peer
                )
            )
        elif event == "down":
            self._emit(
                RouteMonitorMessage(
                    BMPKind.PEER_DOWN,
                    now,
                    server,
                    client_id,
                    peer=peer,
                    reason=session.last_error or "",
                )
            )
        elif event == "update-received" and update is not None:
            as_path: Tuple[int, ...] = ()
            communities: Tuple[str, ...] = ()
            if update.attributes is not None:
                as_path = update.attributes.as_path.asns()
                communities = tuple(
                    str(c) for c in sorted(update.attributes.communities)
                )
            for _path_id, prefix in update.withdrawn:
                self._emit(
                    RouteMonitorMessage(
                        BMPKind.ROUTE_MONITORING,
                        now,
                        server,
                        client_id,
                        peer=peer,
                        prefix=prefix,
                        pre_policy=True,
                        withdraw=True,
                    )
                )
            for _path_id, prefix in update.nlri:
                self._emit(
                    RouteMonitorMessage(
                        BMPKind.ROUTE_MONITORING,
                        now,
                        server,
                        client_id,
                        peer=peer,
                        prefix=prefix,
                        pre_policy=True,
                        as_path=as_path,
                        communities=communities,
                    )
                )

    # -- post-policy stream (fed by the testbed's announcement registry) ------

    def post_policy_announce(
        self,
        server: str,
        address: IPAddress,
        client_id: str,
        prefix: Prefix,
        spec: SpecLike,
    ) -> None:
        now = self.clock()
        rib = self.adopt_mux(server, address)
        rib.install(prefix, _RibEntry(client_id, spec, now))
        self._rib_children[server].set(len(rib))
        self._emit(
            RouteMonitorMessage(
                BMPKind.ROUTE_MONITORING,
                now,
                server,
                client_id,
                prefix=prefix,
                pre_policy=False,
                communities=tuple(
                    self._community_str(peer) for peer in (spec.peers or ())
                ),
            )
        )

    def post_policy_withdraw(
        self, server: str, address: IPAddress, client_id: str, prefix: Prefix
    ) -> None:
        now = self.clock()
        rib = self.adopt_mux(server, address)
        if rib.remove(prefix) is None:
            return
        self._rib_children[server].set(len(rib))
        self._emit(
            RouteMonitorMessage(
                BMPKind.ROUTE_MONITORING,
                now,
                server,
                client_id,
                prefix=prefix,
                pre_policy=False,
                withdraw=True,
            )
        )

    def _community_str(self, peer: int) -> str:
        cached = self._community_strs.get(peer)
        if cached is None:
            cached = self._community_strs[peer] = f"{self.asn}:{peer}"
        return cached

    def _emit(self, message: RouteMonitorMessage) -> None:
        self.messages.append(message)
        view = "pre" if message.pre_policy else "post"
        self._msg_children[(message.kind, view)].inc()

    # -- queries --------------------------------------------------------------

    def servers(self) -> List[str]:
        return sorted(self._ribs)

    def rib(self, server: str) -> Optional[MonitoredRib]:
        return self._ribs.get(server)

    def rib_snapshot(self, server: str) -> Dict[Prefix, Tuple[str, SpecLike]]:
        """``{prefix: (client, spec)}`` post-policy view of one mux."""
        rib = self._ribs.get(server)
        if rib is None:
            return {}
        return {
            prefix: (entry.client_id, entry.spec)
            for prefix in rib.prefixes()
            for entry in (rib.get(prefix),)
            if entry is not None
        }

    def of_kind(self, kind: BMPKind) -> List[RouteMonitorMessage]:
        return [m for m in self.messages if m.kind is kind]

    def for_prefix(self, prefix: Prefix) -> List[RouteMonitorMessage]:
        return [m for m in self.messages if m.prefix == prefix]

    def _export_path(self, spec: SpecLike) -> Tuple[int, ...]:
        # Mirrors OriginSpec.export_path (not imported: core/inet must not
        # be a runtime dependency of this module).
        path = (self.asn,) * (1 + spec.prepend)
        if spec.poison:
            path = path + tuple(spec.poison) + (self.asn,)
        return path

    def rib_routes(self, server: str) -> List[Route]:
        """The monitored RIB of one mux as BGP routes.

        Steering state is encoded the way the production testbed does it:
        ``PEERING:peer`` communities select the peers the prefix goes to
        (peers above 16 bits cannot be community-encoded and are
        omitted, like on a real wire).  Attribute content is restricted
        to what the UPDATE codec round-trips, so :meth:`dump_mrt` output
        re-parses to identical routes.
        """
        rib = self._ribs.get(server)
        if rib is None:
            return []
        routes: List[Route] = []
        for prefix in rib.prefixes():
            entry = rib.get(prefix)
            if entry is None:  # pragma: no cover - prefixes() is keys
                continue
            spec = entry.spec
            communities = frozenset(
                Community(self.asn, peer)
                for peer in (spec.peers or ())
                if 0 <= peer < MAX_16BIT
            )
            attributes = PathAttributes(
                origin=Origin.IGP,
                as_path=ASPath.from_asns(self._export_path(spec)),
                next_hop=rib.address,
                communities=communities,
            )
            routes.append(
                Route(
                    prefix=prefix,
                    attributes=attributes,
                    peer_asn=self.asn,
                    peer_id=str(rib.address),
                    learned_at=float(int(entry.installed_at)),
                )
            )
        return routes

    def dump_mrt(self, server: str, out: BinaryIO) -> int:
        """Write one mux's monitored RIB as MRT TABLE_DUMP_V2.

        Returns the number of RIB records written."""
        rib = self._ribs.get(server)
        address = rib.address if rib is not None else IPAddress(0, 4)
        return write_table_dump(
            out, int(self.clock()), address, self.rib_routes(server)
        )
