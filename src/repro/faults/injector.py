"""Per-message fault injection on channel endpoints.

A :class:`FaultInjector` attaches to both endpoints of a
:class:`~repro.net.channel.ChannelPair` via their ``transit`` hook: every
``send`` flows through :meth:`FaultInjector._transit`, which may drop the
message, delay it through the event engine, deliver it twice, or flip a
bit before forwarding.  All randomness comes from one named engine stream
per injector label, so two runs with the same engine seed inject exactly
the same faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..net.channel import ChannelPair, Endpoint
from ..sim.engine import Engine
from ..telemetry.metrics import Counter, MetricsRegistry

__all__ = ["FaultConfig", "FaultStats", "FaultInjector"]


@dataclass(frozen=True)
class FaultConfig:
    """Probabilities and delays for one injector.

    Rates are per message in [0, 1].  ``delay`` is a fixed propagation
    delay; ``jitter`` adds a uniform random extra on top.  A corrupted
    message has one random bit flipped — downstream, the BGP codec must
    reject it cleanly (a :class:`~repro.bgp.errors.BGPError`, never a
    crash), which the fuzz tests pin down.
    """

    drop_rate: float = 0.0
    delay: float = 0.0
    jitter: float = 0.0
    duplicate_rate: float = 0.0
    corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.delay < 0 or self.jitter < 0:
            raise ValueError("delay and jitter must be >= 0")


@dataclass
class FaultStats:
    """What an injector actually did."""

    seen: int = 0
    dropped: int = 0
    delayed: int = 0
    duplicated: int = 0
    corrupted: int = 0

    def as_dict(self) -> dict:
        return {
            "seen": self.seen,
            "dropped": self.dropped,
            "delayed": self.delayed,
            "duplicated": self.duplicated,
            "corrupted": self.corrupted,
        }


class FaultInjector:
    """Seeded per-message fault interposer for a channel pair."""

    def __init__(
        self,
        engine: Engine,
        config: Optional[FaultConfig] = None,
        label: str = "fault",
    ) -> None:
        self.engine = engine
        self.config = config or FaultConfig()
        self.label = label
        self.active = True
        self.stats = FaultStats()
        self._rng = engine.rng(f"fault:{label}")
        self._fault_counter: Optional[Counter] = None

    def bind_metrics(self, metrics: MetricsRegistry) -> "FaultInjector":
        """Mirror :class:`FaultStats` onto
        ``peering_faults_injected_total{injector=,action=}``."""
        self._fault_counter = metrics.counter(
            "peering_faults_injected_total",
            "Channel fault injections by injector and action",
            ("injector", "action"),
        )
        return self

    def _count(self, action: str) -> None:
        if self._fault_counter is not None:
            self._fault_counter.labels(self.label, action).inc()

    def attach(self, pair: ChannelPair) -> "FaultInjector":
        for endpoint in pair:
            self.attach_endpoint(endpoint)
        return self

    def attach_endpoint(self, endpoint: Endpoint) -> None:
        endpoint.transit = self._transit

    def detach(self, pair: ChannelPair) -> None:
        for endpoint in pair:
            # Bound-method equality, not identity: each `self._transit`
            # access creates a fresh method object.
            if endpoint.transit == self._transit:
                endpoint.transit = None

    def _transit(self, data: bytes, forward: Callable[[bytes], None]) -> None:
        if not self.active:
            forward(data)
            return
        config, rng = self.config, self._rng
        self.stats.seen += 1
        self._count("seen")
        if config.drop_rate and rng.random() < config.drop_rate:
            self.stats.dropped += 1
            self._count("dropped")
            return
        payload = data
        if config.corrupt_rate and rng.random() < config.corrupt_rate:
            payload = self._corrupt(payload)
            self.stats.corrupted += 1
            self._count("corrupted")
        copies = 1
        if config.duplicate_rate and rng.random() < config.duplicate_rate:
            copies = 2
            self.stats.duplicated += 1
            self._count("duplicated")
        for _ in range(copies):
            delay = config.delay
            if config.jitter:
                delay += rng.random() * config.jitter
            if delay > 0:
                self.stats.delayed += 1
                self._count("delayed")
                self.engine.schedule(
                    delay,
                    lambda p=payload: forward(p),
                    label=f"fault:{self.label}:deliver",
                )
            else:
                forward(payload)

    def _corrupt(self, data: bytes) -> bytes:
        if not data:
            return data
        bit = self._rng.randrange(len(data) * 8)
        corrupted = bytearray(data)
        corrupted[bit // 8] ^= 1 << (bit % 8)
        return bytes(corrupted)
