"""A severable link between two BGP sessions.

The plain :func:`repro.bgp.session.connect` wires two sessions over one
:class:`~repro.net.channel.ChannelPair` forever.  A :class:`Link` instead
owns the transport: it hands out channel *generations* through each
session's ``transport_factory``, so after :meth:`sever` both sides lose
their transport, back off, and transparently re-establish over a fresh
pair.  :meth:`cut` additionally marks the link down — factories return
``None`` (counting ConnectRetry failures at the sessions) until
:meth:`restore`.

An optional :class:`~repro.faults.injector.FaultConfig` applies message-
level faults to every generation through a single injector (one RNG
stream across generations, keeping runs seed-deterministic).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..bgp.session import _IN_SESSION, BGPSession
from ..net.channel import ChannelPair, Endpoint
from ..sim.engine import Engine
from .injector import FaultConfig, FaultInjector

__all__ = ["Link"]


class Link:
    """Owns the (re-provisionable) transport between two sessions."""

    def __init__(
        self,
        engine: Engine,
        left: BGPSession,
        right: BGPSession,
        name: str = "link",
        fault_config: Optional[FaultConfig] = None,
    ) -> None:
        self.engine = engine
        self.left = left
        self.right = right
        self.name = name
        self.up = True
        self.generation = 0
        self.cuts = 0
        self._pair: Optional[ChannelPair] = None
        self.injector: Optional[FaultInjector] = None
        if fault_config is not None:
            self.injector = FaultInjector(engine, fault_config, label=f"link:{name}")
        self.on_event: Optional[Callable[[str, dict], None]] = None
        left.transport_factory = lambda: self._claim(left)
        right.transport_factory = lambda: self._claim(right)

    # -- wiring --------------------------------------------------------------

    def start(self) -> None:
        """Start both sessions over a fresh generation (honors passive)."""
        if not self.left.config.passive:
            self.left.start()
        if not self.right.config.passive:
            self.right.start()

    def _claim(self, session: BGPSession) -> Optional[Endpoint]:
        """Hand ``session`` its end of the current channel generation.

        Creates a new generation when none is alive, and binds the *other*
        session to its end immediately, so whichever side reconnects first
        finds a listening peer instead of writing into the void.
        """
        if not self.up:
            return None
        if self._pair is None or self._pair.closed:
            self.generation += 1
            self._pair = ChannelPair(f"{self.name}#{self.generation}")
            if self.injector is not None:
                self.injector.attach(self._pair)
            self._emit("link-provisioned", generation=self.generation)
        own, other, other_end = (
            (self._pair.a, self.right, self._pair.b)
            if session is self.left
            else (self._pair.b, self.left, self._pair.a)
        )
        if other.endpoint is not other_end and other.fsm.state not in _IN_SESSION:
            other.rebind(other_end)
        return own

    # -- faults --------------------------------------------------------------

    def sever(self) -> None:
        """Cut the wire.  Both sessions observe transport loss; with
        ``auto_reconnect`` they re-establish over the next generation."""
        self.cuts += 1
        self._emit("link-severed", generation=self.generation)
        if self._pair is not None and not self._pair.closed:
            self._pair.sever()

    def cut(self) -> None:
        """Take the link down: sever it and refuse new transports."""
        self.up = False
        self._emit("link-down", generation=self.generation)
        if self._pair is not None and not self._pair.closed:
            self._pair.sever()

    def restore(self) -> None:
        """Bring the link back; reconnecting sessions get transports again."""
        if self.up:
            return
        self.up = True
        self._emit("link-restored", generation=self.generation)

    @property
    def established(self) -> bool:
        return self.left.established and self.right.established

    def _emit(self, kind: str, **detail) -> None:
        if self.on_event is not None:
            self.on_event(kind, dict(detail, link=self.name))
