"""Deterministic fault injection for the testbed.

The production PEERING testbed lives with real-world failures: flapping
transit links, mux machines rebooting, partitioned sites.  This package
reproduces those conditions on the simulated testbed, deterministically —
every random decision draws from a named stream of the engine's seeded
RNG (:meth:`repro.sim.engine.Engine.rng`), so a chaos run replays exactly
and regressions bisect cleanly.

Three layers:

* :class:`FaultInjector` — interposes on a channel pair's ``transit``
  hook to drop, delay, duplicate, or corrupt individual messages.
* :class:`Link` — owns the transport between two sessions so it can be
  severed and re-provisioned (a fresh channel generation per cut), with
  an injector re-attached to every generation.
* :class:`FaultPlan` — a scripted, seeded schedule of faults (link flaps,
  mux crash/restart, network partitions) driven by the event engine.
"""

from .injector import FaultConfig, FaultInjector, FaultStats
from .link import Link
from .plan import FaultPlan

__all__ = ["FaultConfig", "FaultInjector", "FaultStats", "Link", "FaultPlan"]
