"""Scripted fault scenarios on the event engine.

A :class:`FaultPlan` schedules faults at simulated times and records what
it did (and when) in a deterministic log.  The scenarios mirror the ones
testbed operators actually see:

* :meth:`flap_link` — a link goes down and comes back, N times;
* :meth:`sever_link` — a one-off transport cut (sessions reconnect
  immediately over a fresh channel);
* :meth:`partition` — several links down together, healing together;
* :meth:`crash_mux` / :meth:`restart_mux` — a PEERING server process
  dies and (optionally) comes back.

Everything is driven through :class:`~repro.sim.engine.Engine`, so a plan
plus a seed reproduces the identical event sequence run after run — the
property the chaos tests assert.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

from ..sim.engine import Engine
from .link import Link

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.server import PeeringServer

__all__ = ["FaultPlan"]


class FaultPlan:
    """A deterministic schedule of faults against links and muxes."""

    def __init__(self, engine: Engine, name: str = "plan") -> None:
        self.engine = engine
        self.name = name
        # (time, action, target) — appended when each fault *fires*.
        self.log: List[Tuple[float, str, str]] = []

    def _fire(self, action: str, target: str, thunk) -> None:
        self.log.append((self.engine.now, action, target))
        thunk()

    def _at(self, time: float, action: str, target: str, thunk) -> None:
        self.engine.schedule_at(
            time,
            lambda: self._fire(action, target, thunk),
            label=f"fault-plan:{self.name}:{action}",
        )

    # -- link scenarios ------------------------------------------------------

    def sever_link(self, link: Link, at: float) -> "FaultPlan":
        """Cut the wire once; sessions reconnect as soon as they retry."""
        self._at(at, "sever", link.name, link.sever)
        return self

    def flap_link(
        self,
        link: Link,
        at: float,
        down_for: float = 5.0,
        times: int = 1,
        spacing: float = 60.0,
    ) -> "FaultPlan":
        """Take the link down for ``down_for`` seconds, ``times`` times,
        successive flaps starting ``spacing`` seconds apart."""
        if down_for >= spacing and times > 1:
            raise ValueError("flaps would overlap: need down_for < spacing")
        for i in range(times):
            start = at + i * spacing
            self._at(start, "cut", link.name, link.cut)
            self._at(start + down_for, "restore", link.name, link.restore)
        return self

    def partition(
        self, links: Iterable[Link], at: float, heal_after: float
    ) -> "FaultPlan":
        """Down a set of links together; heal them all ``heal_after``
        seconds later (a site losing its network, then regaining it)."""
        links = list(links)
        for link in links:
            self._at(at, "cut", link.name, link.cut)
            self._at(at + heal_after, "restore", link.name, link.restore)
        return self

    def bounce_session(
        self,
        session,
        at: float,
        times: int = 1,
        spacing: float = 30.0,
    ) -> "FaultPlan":
        """Drop a session's transport (no CEASE), ``times`` times.

        Works on any :class:`~repro.bgp.session.BGPSession` regardless of
        who owns its transport — testbed mux sessions included — because
        it closes whatever endpoint the session currently holds."""

        def sever() -> None:
            if session.endpoint is not None and not session.endpoint.closed:
                session.endpoint.close()

        for i in range(times):
            self._at(at + i * spacing, "bounce", session.config.description, sever)
        return self

    # -- mux scenarios -------------------------------------------------------

    def crash_mux(
        self,
        server: "PeeringServer",
        at: float,
        down_for: Optional[float] = None,
        hard: bool = False,
    ) -> "FaultPlan":
        """Kill a mux at ``at``; if ``down_for`` is given, restart it that
        many seconds later.  ``hard=True`` models power loss: in-memory
        announcement state is wiped, so recovery needs the control journal
        (omit ``down_for`` under a watchdog — it restarts the mux itself).
        """
        self._at(at, "crash-hard" if hard else "crash", server.site.name,
                 lambda: server.crash(hard=hard))
        if down_for is not None:
            self._at(at + down_for, "restart", server.site.name, server.restart)
        return self

    def wedge_mux(self, server: "PeeringServer", at: float) -> "FaultPlan":
        """Hang a mux process at ``at``: it stays "alive" but stops
        processing.  Only a watchdog's liveness probes will notice."""
        self._at(at, "wedge", server.site.name, server.wedge)
        return self

    def restart_mux(self, server: "PeeringServer", at: float) -> "FaultPlan":
        self._at(at, "restart", server.site.name, server.restart)
        return self

    # -- misbehaving-client scenarios --------------------------------------------

    def storm_updates(
        self,
        session,
        prefix,
        attributes,
        at: float,
        updates: int = 100,
        interval: float = 0.5,
    ) -> "FaultPlan":
        """A misbehaving speaker floods announce/withdraw churn for one
        prefix over ``session`` — the update storm a circuit breaker
        exists to absorb.  Stops silently once the session is torn down
        (which is exactly what the supervision layer should cause)."""

        def one(i: int) -> None:
            if not session.established:
                return  # already cut off; nothing reaches the mux
            if i % 2 == 0:
                session.announce([prefix], attributes)
            else:
                session.withdraw([prefix])

        for i in range(updates):
            self._at(
                at + i * interval,
                "storm-update",
                session.config.description,
                lambda i=i: one(i),
            )
        return self

    # -- route-security attack scenarios -----------------------------------------
    # These drive a repro.secroute.campaign.AttackSurface (duck-typed: any
    # object with announce/withdraw/leak) so scripted hijack/leak attacks
    # share the fault engine's deterministic timeline with link and mux
    # faults.  This module deliberately does not import repro.secroute.

    def hijack_prefix(
        self, surface, attacker: int, prefix, at: float
    ) -> "FaultPlan":
        """At ``at``, ``attacker`` originates ``prefix`` (exact-prefix
        origin hijack; announce a more-specific for a sub-prefix hijack).
        """
        self._at(
            at, "hijack", f"AS{attacker}>{prefix}",
            lambda: surface.announce(attacker, prefix),
        )
        return self

    def leak_route(self, surface, leaker: int, prefix, at: float) -> "FaultPlan":
        """At ``at``, ``leaker`` re-originates its currently-selected
        route for ``prefix`` — a path-preserving route leak."""
        self._at(
            at, "leak", f"AS{leaker}>{prefix}", lambda: surface.leak(leaker, prefix)
        )
        return self

    def withdraw_prefix(self, surface, asn: int, prefix, at: float) -> "FaultPlan":
        """At ``at``, drop ``asn``'s origination of ``prefix`` (attack
        ends, or the victim withdraws)."""
        self._at(
            at, "withdraw", f"AS{asn}>{prefix}",
            lambda: surface.withdraw(asn, prefix),
        )
        return self

    # -- DDoS scenarios -----------------------------------------------------------
    # flood_traffic drives a repro.inet.dataplane.DataPlane (duck-typed:
    # anything with send(ingress, packet) -> delivery); inject_flowspec /
    # withdraw_flowspec drive a repro.secroute.flowspec.FlowSpecDistributor
    # (announce/withdraw).  As above, no repro.secroute import here.

    def flood_traffic(
        self, plane, flows, at: float, collect: Optional[List] = None
    ) -> "FaultPlan":
        """At ``at``, inject every ``(ingress_asn, packet)`` in ``flows``
        through ``plane.send`` — one attack (or measurement) wave.
        Deliveries are appended to ``collect`` when given, so the campaign
        can score absorbed vs leaked volume afterwards."""
        waves = list(flows)

        def fire() -> None:
            for ingress, packet in waves:
                delivery = plane.send(ingress, packet)
                if collect is not None:
                    collect.append(delivery)

        self._at(at, "flood", f"{len(waves)}pkts", fire)
        return self

    # -- anycast scenarios --------------------------------------------------------
    # These drive a repro.anycast.service.AnycastService (duck-typed: any
    # object with fail_site/restore_site) — a whole site dropping out of
    # the anycast announcement, the failover study §3 runs: where does
    # its catchment land, and does it come home on restore?  As above, no
    # repro.anycast import here.

    def fail_anycast_site(self, service, name: str, at: float) -> "FaultPlan":
        """At ``at``, take anycast site ``name`` down: its origin spec
        drops out of the service's announcement."""
        self._at(
            at, "anycast-fail", name, lambda: service.fail_site(name)
        )
        return self

    def restore_anycast_site(self, service, name: str, at: float) -> "FaultPlan":
        """At ``at``, bring anycast site ``name`` back into the
        announcement."""
        self._at(
            at, "anycast-restore", name, lambda: service.restore_site(name)
        )
        return self

    def inject_flowspec(self, distributor, rule, at: float) -> "FaultPlan":
        """At ``at``, announce one FlowSpec rule into ``distributor``
        (the defense arriving mid-attack — or an attacker probing it)."""
        self._at(
            at, "flowspec", f"AS{rule.originator}>{rule.dst_prefix}",
            lambda: distributor.announce(rule),
        )
        return self

    def withdraw_flowspec(
        self, distributor, originator: int, at: float, prefix=None
    ) -> "FaultPlan":
        """At ``at``, withdraw ``originator``'s FlowSpec rules (for one
        destination prefix, or all of them)."""
        self._at(
            at, "flowspec-withdraw", f"AS{originator}",
            lambda: distributor.withdraw(originator, prefix),
        )
        return self
