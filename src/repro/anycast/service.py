"""The anycast service model: one prefix, many sites, per-site steering.

PEERING's headline use case (§3, "Deploying real services") is
anycasting a prefix from many muxes at once and watching which site the
Internet delivers each client to.  :class:`AnycastService` is that
deployment as an object: a set of named **sites** (each a group of
uplink ASes adjacent to the anycast origin), per-site **steering state**
(prepend depth, poisoned ASNs, and a steering-community-style uplink
selection), and the compilation of all of it into one multi-origin
:class:`~repro.inet.routing.Announcement` — one
:class:`~repro.inet.routing.OriginSpec` per live site, in deterministic
site-name order.

That spec order is the load-bearing trick: the propagation engine's
compiled route table records, for every AS, *which origin spec's export
terminates its forwarding chain* (the root array).  With one spec per
site, spec index == site index, so the catchment of every AS on a
50k-AS Internet is a single array lookup — no forwarding-chain walks.
:mod:`repro.anycast.catchment` builds on exactly this.

Two ways to stand a service up:

* :meth:`AnycastService.deploy` — attach a fresh anycast origin AS to a
  generated/ingested topology (transit uplinks become providers, peer
  uplinks become peerings), for population-scale studies;
* :meth:`AnycastService.from_testbed` — wrap the PEERING testbed's own
  muxes (site == mux, uplinks == the mux's peer/upstream ASNs), so the
  service computes catchments for announcements the testbed already
  made, sharing the engine and its outcome cache.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..inet.engine import PropagationEngine
from ..inet.routing import Announcement, OriginSpec, RoutingOutcome
from ..inet.topology import ASGraph, ASKind, ASNode
from ..net.addr import Prefix

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..core.testbed import Testbed
    from ..telemetry.metrics import MetricsRegistry

__all__ = ["AnycastSite", "SiteSteering", "AnycastService", "ANYCAST_ASN"]

# Default origin ASN for standalone deployments (private range, clear of
# the generators' allocation).
ANYCAST_ASN = 64512


@dataclass(frozen=True)
class AnycastSite:
    """One anycast site: a name and the uplink ASes adjacent to the
    anycast origin there.  ``transits`` become providers of the origin
    when the site is wired by :meth:`AnycastService.deploy`; ``peers``
    become settlement-free peerings (IXP-style sites are mostly peers,
    university sites mostly transits)."""

    name: str
    transits: Tuple[int, ...] = ()
    peers: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("site needs a name")
        if not (self.transits or self.peers):
            raise ValueError(f"site {self.name!r} has no uplinks")

    @property
    def uplinks(self) -> Tuple[int, ...]:
        return tuple(sorted(set(self.transits) | set(self.peers)))


@dataclass(frozen=True)
class SiteSteering:
    """Per-site traffic-engineering state.

    * ``prepend`` — extra copies of the origin ASN on this site's export;
    * ``poison`` — ASNs loop-poisoned on this site's export (LIFEGUARD
      moves: the listed ASes reject this site's route);
    * ``uplinks`` — announce only to this subset of the site's uplinks
      (the PEERING steering-community move, ``None`` = all uplinks).
    """

    prepend: int = 0
    poison: Tuple[int, ...] = ()
    uplinks: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.prepend < 0:
            raise ValueError("prepend must be >= 0")
        if self.uplinks is not None and not self.uplinks:
            raise ValueError("uplinks selection must be non-empty (or None)")

    def describe(self) -> str:
        parts: List[str] = []
        if self.prepend:
            parts.append(f"prepend={self.prepend}")
        if self.poison:
            parts.append(f"poison={sorted(self.poison)}")
        if self.uplinks is not None:
            parts.append(f"uplinks={sorted(self.uplinks)}")
        return " ".join(parts) if parts else "default"


class AnycastService:
    """One anycast prefix announced from many sites over one engine."""

    def __init__(
        self,
        engine: PropagationEngine,
        asn: int,
        sites: Sequence[AnycastSite],
        prefix: Optional[Prefix] = None,
    ) -> None:
        if not sites:
            raise ValueError("anycast service needs at least one site")
        ordered = tuple(sorted(sites, key=lambda s: s.name))
        names = [s.name for s in ordered]
        if len(set(names)) != len(names):
            raise ValueError("duplicate site names")
        self.engine = engine
        self.asn = asn
        self.prefix = prefix
        self.sites: Tuple[AnycastSite, ...] = ordered
        self._by_name: Dict[str, AnycastSite] = {s.name: s for s in ordered}
        self._steering: Dict[str, SiteSteering] = {
            s.name: SiteSteering() for s in ordered
        }
        self._down: Set[str] = set()
        self._last_outcome: Optional[RoutingOutcome] = None
        self.steering_changes = 0
        # Set by catchment mapping / the traffic engineer; rendered by
        # the looking glass.
        self.last_shares: Dict[str, float] = {}
        self.last_rebalance: Optional[Dict[str, object]] = None
        self._share_gauges: Dict[str, object] = {}
        self._changes_counter: Optional[object] = None
        self._imbalance_gauge: Optional[object] = None
        self._metrics: Optional["MetricsRegistry"] = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def deploy(
        cls,
        graph: ASGraph,
        sites: Sequence[AnycastSite],
        asn: int = ANYCAST_ASN,
        prefix: Optional[Prefix] = None,
        engine: Optional[PropagationEngine] = None,
    ) -> "AnycastService":
        """Attach a fresh anycast origin AS to ``graph`` and wire every
        site's uplinks (transits as providers, peers as peerings).

        Uplink sets must be pairwise disjoint across sites — that is what
        makes "which uplink did traffic enter through" a well-defined
        site identity — and every uplink must already exist in the graph.
        """
        if asn in graph:
            raise ValueError(f"AS{asn} already exists in the topology")
        seen: Dict[int, str] = {}
        for site in sites:
            for uplink in site.uplinks:
                if uplink not in graph:
                    raise ValueError(
                        f"site {site.name!r} uplink AS{uplink} not in topology"
                    )
                if uplink in seen:
                    raise ValueError(
                        f"AS{uplink} is an uplink of both {seen[uplink]!r} "
                        f"and {site.name!r}; site uplinks must be disjoint"
                    )
                seen[uplink] = site.name
        with graph.batch():
            graph.add_as(ASNode(asn=asn, name="anycast", kind=ASKind.TESTBED))
            for site in sites:
                for transit in site.transits:
                    graph.add_provider(customer=asn, provider=transit)
                for peer in site.peers:
                    graph.add_peering(asn, peer)
        if engine is None:
            engine = PropagationEngine(graph)
        return cls(engine, asn, sites, prefix=prefix)

    @classmethod
    def from_testbed(
        cls,
        testbed: "Testbed",
        site_names: Optional[Sequence[str]] = None,
        prefix: Optional[Prefix] = None,
    ) -> "AnycastService":
        """Wrap PEERING muxes as anycast sites (site == mux, uplinks ==
        the mux's peer/upstream ASNs), sharing the testbed's propagation
        engine so catchment queries hit the same outcome cache the
        testbed's own announcements populate."""
        names = (
            list(site_names)
            if site_names is not None
            else sorted(testbed.servers)
        )
        sites = [
            AnycastSite(
                name=name,
                peers=tuple(sorted(testbed.servers[name].neighbor_asns)),
            )
            for name in names
        ]
        return cls(testbed.propagation, testbed.asn, sites, prefix=prefix)

    # -- steering state --------------------------------------------------------

    def site(self, name: str) -> AnycastSite:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown site {name!r}") from None

    def steering_of(self, name: str) -> SiteSteering:
        self.site(name)
        return self._steering[name]

    def steer(self, name: str, steering: SiteSteering) -> None:
        """Replace one site's steering state."""
        site = self.site(name)
        self._validate_steering(site, steering)
        if steering != self._steering[name]:
            self._steering[name] = steering
            self._bump_changes()

    def adjust(self, name: str, **changes: object) -> SiteSteering:
        """``steer`` with keyword deltas (``prepend=2``, ``poison=(...)``,
        ``uplinks=(...)``); returns the new steering."""
        steering = replace(self._steering[self.site(name).name], **changes)  # type: ignore[arg-type]
        self.steer(name, steering)
        return steering

    def _validate_steering(self, site: AnycastSite, steering: SiteSteering) -> None:
        if steering.uplinks is not None:
            extra = set(steering.uplinks) - set(site.uplinks)
            if extra:
                raise ValueError(
                    f"steering for {site.name!r} selects non-uplinks "
                    f"{sorted(extra)}"
                )

    def fail_site(self, name: str) -> None:
        """Take a site down: its spec drops out of the announcement (the
        failover study: where does its catchment land?)."""
        self.site(name)
        if name not in self._down:
            if len(self.active_site_names()) == 1:
                raise ValueError("cannot fail the last live site")
            self._down.add(name)
            self._bump_changes()

    def restore_site(self, name: str) -> None:
        self.site(name)
        if name in self._down:
            self._down.discard(name)
            self._bump_changes()

    def _bump_changes(self) -> None:
        self.steering_changes += 1
        counter = self._changes_counter
        if counter is not None:
            counter.inc()  # type: ignore[attr-defined]

    def down_sites(self) -> Tuple[str, ...]:
        return tuple(sorted(self._down))

    def active_site_names(self) -> Tuple[str, ...]:
        """Live sites in announcement (== spec-index) order."""
        return tuple(s.name for s in self.sites if s.name not in self._down)

    # -- announcement compilation ----------------------------------------------

    def _spec(self, site: AnycastSite, steering: SiteSteering) -> OriginSpec:
        uplinks = steering.uplinks if steering.uplinks is not None else site.uplinks
        return OriginSpec(
            asn=self.asn,
            prepend=steering.prepend,
            poison=tuple(sorted(steering.poison)),
            announce_to=tuple(sorted(uplinks)),
        )

    def announcement(
        self, overrides: Optional[Mapping[str, SiteSteering]] = None
    ) -> Announcement:
        """The multi-origin announcement for the current steering state —
        one spec per live site, in site-name order (so origin-spec index
        *is* site index).  ``overrides`` swaps per-site steering without
        mutating the service: the what-if interface the traffic engineer
        evaluates candidate moves through."""
        overrides = overrides or {}
        for name in overrides:
            self._validate_steering(self.site(name), overrides[name])
        specs = tuple(
            self._spec(
                self._by_name[name],
                overrides.get(name, self._steering[name]),
            )
            for name in self.active_site_names()
        )
        return Announcement(origins=specs, prefix=self.prefix)

    def uplink_site_index(self) -> Dict[int, str]:
        """Announced-uplink ASN -> site name for the live sites (first
        site in announcement order claims a shared uplink).  This is the
        forwarding-chain-based catchment identity — the reference the
        compiled root-array fast path is property-tested against."""
        index: Dict[int, str] = {}
        for name in self.active_site_names():
            site = self._by_name[name]
            steering = self._steering[name]
            uplinks = (
                steering.uplinks if steering.uplinks is not None else site.uplinks
            )
            for uplink in uplinks:
                index.setdefault(uplink, name)
        return index

    def solo_announcement(
        self, name: str, prepend: Optional[int] = None
    ) -> Announcement:
        """A single-site what-if announcement: ``name`` announcing alone
        under its current steering (optionally at a different prepend
        depth).  Single-spec prepend ladders are exactly what the
        engine's *shift* delta regime handles, which is why the traffic
        engineer screens prepend candidates through these."""
        site = self.site(name)
        steering = self._steering[name]
        if prepend is not None:
            steering = replace(steering, prepend=prepend)
        return Announcement(
            origins=(self._spec(site, steering),), prefix=self.prefix
        )

    # -- convergence -----------------------------------------------------------

    def outcome(self, use_cache: bool = True) -> RoutingOutcome:
        """Converged routes for the current announcement, delta-chained
        off the previous steering state (steering moves ride the engine's
        incremental regimes)."""
        outcome = self.engine.propagate_delta(
            self._last_outcome, self.announcement(), use_cache=use_cache
        )
        self._last_outcome = outcome
        return outcome

    def adopt(self, outcome: RoutingOutcome) -> None:
        """Make ``outcome`` the delta-chain base for the next
        :meth:`outcome` call (the engineer applies the winning candidate's
        already-computed outcome instead of reconverging)."""
        self._last_outcome = outcome

    # -- telemetry -------------------------------------------------------------

    def bind_metrics(self, metrics: "MetricsRegistry") -> None:
        """Export catchment/steering gauges:
        ``peering_anycast_site_volume_share{site=...}``,
        ``peering_anycast_steering_changes_total``, and
        ``peering_anycast_rebalance_imbalance``."""
        self._metrics = metrics
        gauge = metrics.gauge(
            "peering_anycast_site_volume_share",
            "Fraction of client volume landing at each anycast site",
            ("site",),
        )
        self._share_gauges = {s.name: gauge.labels(s.name) for s in self.sites}
        self._changes_counter = metrics.counter(
            "peering_anycast_steering_changes_total",
            "Anycast steering state changes applied",
        ).labels()
        self._imbalance_gauge = metrics.gauge(
            "peering_anycast_rebalance_imbalance",
            "Volume imbalance vs targets after the last rebalance",
        ).labels()

    def record_shares(self, shares: Mapping[str, float]) -> None:
        """Adopt a computed catchment's per-site volume shares (called by
        :meth:`repro.anycast.catchment.CatchmentMap.observe`)."""
        self.last_shares = dict(shares)
        for name, value in shares.items():
            child = self._share_gauges.get(name)
            if child is not None:
                child.set(value)  # type: ignore[attr-defined]

    def record_rebalance(self, summary: Dict[str, object]) -> None:
        """Adopt a rebalance report summary (called by the engineer)."""
        self.last_rebalance = summary
        gauge = self._imbalance_gauge
        after = summary.get("imbalance_after")
        if gauge is not None and isinstance(after, (int, float)):
            gauge.set(float(after))  # type: ignore[attr-defined]

    # -- reporting -------------------------------------------------------------

    def describe(self) -> List[str]:
        """Looking-glass lines: per-site steering + last known shares +
        last rebalance."""
        lines = [
            f"anycast AS{self.asn}: {len(self.active_site_names())}/"
            f"{len(self.sites)} sites live"
        ]
        for site in self.sites:
            state = "DOWN" if site.name in self._down else "up"
            steering = self._steering[site.name].describe()
            share = self.last_shares.get(site.name)
            shown = f" share={share:.1%}" if share is not None else ""
            lines.append(
                f"  {site.name}: {state} uplinks={len(site.uplinks)} "
                f"[{steering}]{shown}"
            )
        if self.last_rebalance is not None:
            r = self.last_rebalance
            lines.append(
                "  last rebalance: "
                f"{r.get('iterations')} iterations, "
                f"imbalance {r.get('imbalance_before')} -> "
                f"{r.get('imbalance_after')}"
                f"{' (converged)' if r.get('converged') else ''}"
            )
        return lines
