"""The closed-loop anycast traffic engineer.

Given per-site load targets, :class:`TrafficEngineer` greedily walks the
steering space — prepend depth, poisoned uplinks, steering-community
uplink drops — until the measured catchment matches the targets (or no
move improves the score).  The loop is built so one rebalance iteration
is cheap *by construction*:

* **Prepend screening rides the shift regime.**  Candidate prepend
  depths for a site are evaluated through single-site *solo footprint*
  ladders (:meth:`AnycastService.solo_announcement` at depths
  ``cur..max``): single-spec announcements differing only in prepend are
  exactly what the engine's shift delta handles, so a whole ladder costs
  one converge plus near-free shifts.  Per-client arbitration across the
  solo footprints (best route kind, then path length, then site order)
  estimates the full-deployment shares at each depth and picks the most
  promising depth — a screen, not ground truth.
* **Shortlisted moves are evaluated exactly, in one batch.**  The
  surviving candidates (one steering override each) become multi-origin
  announcements evaluated in a single affinity-grouped
  ``propagate_many`` sweep; prepend-only overrides chain off each other
  inside one affinity group, so the exact pass converges a handful of
  deltas, not a sweep of fulls.
* **Scoring = imbalance + churn.**  Imbalance is the total-variation
  distance between measured and target volume shares; churn is the
  volume fraction that would flip sites, weighted by
  ``churn_weight`` — an engineer that thrashes clients between sites to
  shave a point of imbalance is worse than one that converges calmly.

Determinism: candidate generation is fully ordered, the only randomness
is a seeded shuffle used for tie-breaking equal scores, and the engine's
parallel sweeps are route-identical to serial ones — so a rebalance run
is byte-identical across reruns and across ``parallel`` settings (the
property the bench gates).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple

from ..inet.engine import CompiledOutcome
from ..inet.routing import RouteKind, RoutingOutcome
from ..workloads.traffic import ClientPopulation
from .catchment import CatchmentMap
from .service import AnycastService, SiteSteering

__all__ = [
    "EngineerConfig",
    "SteeringMove",
    "IterationRecord",
    "RebalanceReport",
    "TrafficEngineer",
]


@dataclass(frozen=True)
class EngineerConfig:
    """Knobs for one rebalance run.

    ``tolerance`` is the per-run stopping imbalance (total variation);
    ``epsilon`` the minimum score improvement a move must buy;
    ``parallel`` fans both the screening ladders and the exact
    candidate sweep over engine workers."""

    max_iterations: int = 8
    max_prepend: int = 5
    tolerance: float = 0.02
    epsilon: float = 1e-4
    churn_weight: float = 0.25
    seed: int = 0
    parallel: Optional[int] = None
    screen_sites: int = 2
    poison_moves: bool = True
    community_moves: bool = True

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.max_prepend < 0:
            raise ValueError("max_prepend must be >= 0")
        if not (0.0 <= self.tolerance < 1.0):
            raise ValueError("tolerance must be in [0, 1)")


@dataclass(frozen=True)
class SteeringMove:
    """One candidate steering change at one site."""

    site: str
    kind: str  # "prepend" | "poison" | "unpoison" | "drop-uplink" | "restore-uplinks"
    steering: SiteSteering
    detail: str = ""

    def describe(self) -> str:
        extra = f" ({self.detail})" if self.detail else ""
        return f"{self.site}: {self.kind}{extra} -> [{self.steering.describe()}]"


@dataclass
class IterationRecord:
    """What one rebalance iteration measured, tried, and applied."""

    iteration: int
    imbalance: float
    shares: Dict[str, float]
    candidates: List[str]
    applied: Optional[str]
    score_before: float
    score_after: float
    churn: float
    delta_regimes: Dict[str, int] = field(default_factory=dict)

    @property
    def shift_runs(self) -> int:
        return self.delta_regimes.get("shift", 0)

    def to_dict(self) -> Dict[str, object]:
        return {
            "iteration": self.iteration,
            "imbalance": round(self.imbalance, 9),
            "shares": {k: round(v, 9) for k, v in sorted(self.shares.items())},
            "candidates": list(self.candidates),
            "applied": self.applied,
            "score_before": round(self.score_before, 9),
            "score_after": round(self.score_after, 9),
            "churn": round(self.churn, 9),
            "delta_regimes": dict(sorted(self.delta_regimes.items())),
        }


@dataclass
class RebalanceReport:
    """The full, serializable record of one rebalance run."""

    targets: Dict[str, float]
    iterations: List[IterationRecord]
    converged: bool
    imbalance_before: float
    imbalance_after: float
    final_shares: Dict[str, float]

    @property
    def moves_applied(self) -> List[str]:
        return [r.applied for r in self.iterations if r.applied is not None]

    @property
    def shift_iterations(self) -> int:
        """Iterations whose evaluation rode the engine's shift regime —
        the "cheap by construction" property the bench gates."""
        return sum(1 for r in self.iterations if r.shift_runs > 0)

    def to_json(self) -> str:
        """Canonical serialized report: byte-identical across reruns
        under a fixed seed and across ``parallel`` settings.  Per-regime
        engine accounting (``delta_regimes``) is execution state — it
        varies with cache warmth and worker partitioning while the
        *decisions* don't — so it stays out of the canonical form (read
        it from :attr:`iterations` / :meth:`IterationRecord.to_dict`)."""
        iterations = []
        for r in self.iterations:
            record = r.to_dict()
            record.pop("delta_regimes")
            iterations.append(record)
        payload = {
            "targets": {k: round(v, 9) for k, v in sorted(self.targets.items())},
            "iterations": iterations,
            "converged": self.converged,
            "imbalance_before": round(self.imbalance_before, 9),
            "imbalance_after": round(self.imbalance_after, 9),
            "final_shares": {
                k: round(v, 9) for k, v in sorted(self.final_shares.items())
            },
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def summary(self) -> Dict[str, object]:
        return {
            "iterations": len(self.iterations),
            "converged": self.converged,
            "imbalance_before": round(self.imbalance_before, 4),
            "imbalance_after": round(self.imbalance_after, 4),
            "moves": self.moves_applied,
        }


# RouteKind is "higher preferred"; arbitration sorts ascending.
_KIND_RANK = {int(k): -int(k) for k in RouteKind}


class TrafficEngineer:
    """Greedy steering search toward per-site volume targets."""

    def __init__(
        self,
        service: AnycastService,
        population: ClientPopulation,
        targets: Mapping[str, float],
        config: EngineerConfig = EngineerConfig(),
    ) -> None:
        self.service = service
        self.population = population
        self.config = config
        active = service.active_site_names()
        unknown = set(targets) - set(active)
        if unknown:
            raise ValueError(f"targets name unknown/down sites: {sorted(unknown)}")
        missing = set(active) - set(targets)
        if missing:
            raise ValueError(f"targets missing live sites: {sorted(missing)}")
        total = sum(targets.values())
        if total <= 0:
            raise ValueError("targets must sum to a positive value")
        self.targets: Dict[str, float] = {
            name: targets[name] / total for name in active
        }

    # -- scoring ---------------------------------------------------------------

    def imbalance(self, shares: Mapping[str, float]) -> float:
        """Total-variation distance between measured and target shares
        (0 = on target, 1 = everything in the wrong place)."""
        return 0.5 * sum(
            abs(shares.get(name, 0.0) - self.targets[name])
            for name in self.targets
        )

    def _score(self, cand: CatchmentMap, current: CatchmentMap) -> Tuple[float, float]:
        shift = current.diff(cand)
        churn = shift.flipped_fraction
        return (
            self.imbalance(cand.volume_shares())
            + self.config.churn_weight * churn,
            churn,
        )

    # -- the loop --------------------------------------------------------------

    def rebalance(self) -> RebalanceReport:
        cfg = self.config
        service = self.service
        rng = random.Random(cfg.seed)
        current = CatchmentMap.compute(service, self.population)
        imbalance_before = self.imbalance(current.volume_shares())
        records: List[IterationRecord] = []
        converged = False
        for iteration in range(1, cfg.max_iterations + 1):
            stats_before = self._delta_stats()
            shares = current.volume_shares()
            imbalance = self.imbalance(shares)
            if imbalance <= cfg.tolerance:
                converged = True
                break
            moves = self._candidates(current)
            if not moves:
                converged = True
                break
            overrides = [{m.site: m.steering} for m in moves]
            announcements = [service.announcement(o) for o in overrides]
            cand_maps = CatchmentMap.compute_many(
                service, self.population, announcements, parallel=cfg.parallel
            )
            scored = [self._score(cand, current) for cand in cand_maps]
            # Deterministic seeded tie-break: shuffle the candidate order,
            # then take the first minimum — equal scores resolve by the
            # seeded permutation, not list construction order.
            order = list(range(len(moves)))
            rng.shuffle(order)
            best = min(order, key=lambda j: scored[j][0])
            score_best, churn_best = scored[best]
            record = IterationRecord(
                iteration=iteration,
                imbalance=imbalance,
                shares=shares,
                candidates=[m.describe() for m in moves],
                applied=None,
                score_before=imbalance,
                score_after=score_best,
                churn=churn_best,
                delta_regimes=self._delta_diff(stats_before),
            )
            if score_best >= imbalance - cfg.epsilon:
                records.append(record)
                converged = True
                break
            move = moves[best]
            service.steer(move.site, move.steering)
            service.adopt(cand_maps[best]._outcome)
            current = cand_maps[best]
            current.observe(service)
            record.applied = move.describe()
            record.delta_regimes = self._delta_diff(stats_before)
            records.append(record)
        final_shares = current.volume_shares()
        report = RebalanceReport(
            targets=dict(self.targets),
            iterations=records,
            converged=converged,
            imbalance_before=imbalance_before,
            imbalance_after=self.imbalance(final_shares),
            final_shares=final_shares,
        )
        service.record_rebalance(report.summary())
        return report

    # -- engine accounting -----------------------------------------------------

    def _delta_stats(self) -> Dict[str, int]:
        stats = self.service.engine.stats()
        delta = stats.get("delta")
        return dict(delta) if isinstance(delta, dict) else {}

    def _delta_diff(self, before: Mapping[str, int]) -> Dict[str, int]:
        after = self._delta_stats()
        return {
            mode: after.get(mode, 0) - before.get(mode, 0)
            for mode in after
            if after.get(mode, 0) - before.get(mode, 0)
        }

    # -- candidate generation --------------------------------------------------

    def _candidates(self, current: CatchmentMap) -> List[SteeringMove]:
        cfg = self.config
        service = self.service
        shares = current.volume_shares()
        deviation = {
            name: shares.get(name, 0.0) - self.targets[name]
            for name in self.targets
        }
        over = [
            name
            for name in sorted(deviation, key=lambda n: (-deviation[n], n))
            if deviation[name] > cfg.tolerance
        ]
        under = [
            name
            for name in sorted(deviation, key=lambda n: (deviation[n], n))
            if deviation[name] < -cfg.tolerance
        ]
        moves: List[SteeringMove] = []
        for name in over[: cfg.screen_sites]:
            steering = service.steering_of(name)
            depth = self._screen_prepend(name, steering)
            if depth is not None:
                moves.append(
                    SteeringMove(
                        site=name,
                        kind="prepend",
                        steering=replace(steering, prepend=depth),
                        detail=f"{steering.prepend}->{depth}",
                    )
                )
            entries = current.entry_volumes(name)
            if entries:
                # Heaviest entry uplink, ties to the lowest ASN.
                top = min(entries, key=lambda a: (-entries[a], a))
                if cfg.poison_moves and top not in steering.poison:
                    moves.append(
                        SteeringMove(
                            site=name,
                            kind="poison",
                            steering=replace(
                                steering,
                                poison=tuple(sorted(steering.poison + (top,))),
                            ),
                            detail=f"AS{top}",
                        )
                    )
                announced = (
                    steering.uplinks
                    if steering.uplinks is not None
                    else service.site(name).uplinks
                )
                if cfg.community_moves and top in announced and len(announced) > 1:
                    moves.append(
                        SteeringMove(
                            site=name,
                            kind="drop-uplink",
                            steering=replace(
                                steering,
                                uplinks=tuple(
                                    u for u in announced if u != top
                                ),
                            ),
                            detail=f"AS{top}",
                        )
                    )
        for name in under[: cfg.screen_sites]:
            steering = service.steering_of(name)
            if steering.prepend > 0:
                moves.append(
                    SteeringMove(
                        site=name,
                        kind="prepend",
                        steering=replace(steering, prepend=steering.prepend - 1),
                        detail=f"{steering.prepend}->{steering.prepend - 1}",
                    )
                )
            if steering.poison:
                moves.append(
                    SteeringMove(
                        site=name,
                        kind="unpoison",
                        steering=replace(steering, poison=steering.poison[1:]),
                        detail=f"AS{steering.poison[0]}",
                    )
                )
            if steering.uplinks is not None:
                moves.append(
                    SteeringMove(
                        site=name,
                        kind="restore-uplinks",
                        steering=replace(steering, uplinks=None),
                    )
                )
        return moves

    # -- shift-regime prepend screening ----------------------------------------

    def _screen_prepend(
        self, name: str, steering: SiteSteering
    ) -> Optional[int]:
        """Pick the most promising deeper prepend for ``name`` from its
        solo-footprint ladder.

        The ladder (depths ``cur..max_prepend``) is a chain of
        single-spec announcements differing only in prepend — the
        engine's shift regime — so the whole screen costs one converge
        plus shifts.  Runs uncached: ladders are ephemeral what-ifs and
        caching them would flush real outcomes from the LRU.  Every other
        live site contributes its solo footprint at current steering;
        per-client arbitration (kind, path length, site order) across the
        footprints estimates the shares at each depth."""
        cfg = self.config
        service = self.service
        if steering.prepend >= cfg.max_prepend:
            return None
        depths = list(range(steering.prepend, cfg.max_prepend + 1))
        others = [n for n in service.active_site_names() if n != name]
        ladder = [service.solo_announcement(name, prepend=d) for d in depths]
        solos = [service.solo_announcement(n) for n in others]
        outcomes = service.engine.propagate_many(
            ladder + solos, parallel=cfg.parallel, use_cache=False
        )
        ladder_tables = [self._solo_table(o) for o in outcomes[: len(depths)]]
        other_tables = [
            self._solo_table(o) for o in outcomes[len(depths):]
        ]
        site_order = service.active_site_names()
        rank_of = {n: site_order.index(n) for n in site_order}
        best_depth: Optional[int] = None
        best_imbalance: Optional[float] = None
        for di, depth in enumerate(depths):
            tables = [(name, ladder_tables[di])] + list(
                zip(others, other_tables)
            )
            volumes = {n: 0 for n in site_order}
            total = 0
            for asn, volume in self.population.items():
                total += volume
                chosen: Optional[Tuple[int, int, int]] = None
                chosen_site: Optional[str] = None
                for site_name, (index_of, kind, plen) in tables:
                    i = index_of.get(asn)
                    if i is None or not kind[i]:
                        continue
                    key = (_KIND_RANK[kind[i]], plen[i], rank_of[site_name])
                    if chosen is None or key < chosen:
                        chosen = key
                        chosen_site = site_name
                if chosen_site is not None:
                    volumes[chosen_site] += volume
            est_shares = (
                {n: v / total for n, v in volumes.items()} if total else {}
            )
            est_imbalance = self.imbalance(est_shares)
            if best_imbalance is None or est_imbalance < best_imbalance:
                best_imbalance = est_imbalance
                best_depth = depth
        if best_depth is None or best_depth == steering.prepend:
            return None
        return best_depth

    @staticmethod
    def _solo_table(
        outcome: RoutingOutcome,
    ) -> Tuple[Dict[int, int], List[int], List[int]]:
        """(index_of, kind, plen) for arbitration — array-backed for
        compiled outcomes, rebuilt from routes otherwise."""
        if isinstance(outcome, CompiledOutcome):
            index_of, kind, _root, plen = outcome.spec_table()
            return index_of, list(kind), plen
        index_of = {}
        kinds: List[int] = []
        plens: List[int] = []
        for i, (asn, route) in enumerate(sorted(outcome.items())):
            index_of[asn] = i
            kinds.append(int(route.kind))
            plens.append(len(route.path))
        return index_of, kinds, plens
