"""Population-scale catchment mapping over the compiled route table.

A **catchment map** answers, for a volume-weighted client population,
"which anycast site serves whom, and how much".  The computation is
deliberately array-shaped so it scales to millions of clients:

1. clients are a :class:`~repro.workloads.ClientPopulation` — one
   ``(asn, clients)`` entry per vantage AS, so a million Zipf-weighted
   clients collapse to tens of thousands of entries;
2. the service's multi-origin announcement converges once (or, for a
   batch of steering states, in one :meth:`propagate_many` sweep — the
   engine chains the batch through its delta regimes);
3. per-AS site assignment reads the compiled outcome's **root array**
   (:meth:`~repro.inet.engine.CompiledOutcome.origin_spec_index`): the
   origin-spec index that won each AS *is* the site index, because the
   service emits one spec per site in site order.  No forwarding-chain
   walks, no route materialization — two array lookups per client AS.

For plain (reference) :class:`~repro.inet.routing.RoutingOutcome`
objects the map falls back to forwarding-chain entry-uplink matching —
the same identity the hand-rolled example used — which is what the
property tests compare the fast path against.

:meth:`CatchmentMap.diff` is the stability report: which client ASes
flipped sites between two maps, how much volume moved along each
``site -> site`` flow, and per-site churn — the measurement Tangled-style
anycast studies run after every steering change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..inet.engine import CompiledOutcome
from ..inet.routing import Announcement, RoutingOutcome
from ..workloads.traffic import ClientPopulation
from .service import AnycastService

__all__ = ["CatchmentMap", "CatchmentShift", "UNSERVED"]

# Assignment sentinel for clients with no route to any site (ASN absent
# from the topology, poisoned everywhere, or behind a failed site with
# no alternative).
UNSERVED = "(unserved)"


@dataclass(frozen=True)
class CatchmentShift:
    """The stability report between two catchment maps.

    ``flows[(a, b)]`` is the client volume that moved from site ``a`` to
    site ``b`` (either end may be :data:`UNSERVED`); ``flipped_ases`` /
    ``flipped_volume`` total the movers; ``stability`` is the fraction
    of volume that stayed put (1.0 = no churn)."""

    flows: Tuple[Tuple[Tuple[str, str], int], ...]
    flipped_ases: int
    flipped_volume: int
    total_volume: int

    @property
    def flipped_fraction(self) -> float:
        return self.flipped_volume / self.total_volume if self.total_volume else 0.0

    @property
    def stability(self) -> float:
        return 1.0 - self.flipped_fraction

    def site_churn(self) -> Dict[str, Tuple[int, int]]:
        """``{site: (volume lost, volume gained)}`` over the flip flows."""
        churn: Dict[str, List[int]] = {}
        for (src, dst), volume in self.flows:
            churn.setdefault(src, [0, 0])[0] += volume
            churn.setdefault(dst, [0, 0])[1] += volume
        return {site: (lost, gained) for site, (lost, gained) in churn.items()}

    def render(self) -> List[str]:
        lines = [
            f"catchment shift: {self.flipped_ases} client ASes / "
            f"{self.flipped_volume} clients flipped "
            f"({self.flipped_fraction:.1%} of volume, "
            f"stability {self.stability:.1%})"
        ]
        for (src, dst), volume in self.flows:
            lines.append(f"  {src} -> {dst}: {volume} clients")
        return lines


class CatchmentMap:
    """Per-site client/volume shares plus a queryable per-AS assignment."""

    def __init__(
        self,
        sites: Tuple[str, ...],
        assignment: Dict[int, str],
        weights: Dict[int, int],
        outcome: RoutingOutcome,
        origin_asn: int,
    ) -> None:
        self.sites = sites
        self._assignment = assignment
        self._weights = weights
        self._outcome = outcome
        self._origin_asn = origin_asn
        self.volume_by_site: Dict[str, int] = {s: 0 for s in sites}
        self.ases_by_site: Dict[str, int] = {s: 0 for s in sites}
        self.unserved_volume = 0
        self.unserved_ases = 0
        for asn, site in assignment.items():
            volume = weights[asn]
            if site == UNSERVED:
                self.unserved_volume += volume
                self.unserved_ases += 1
            else:
                self.volume_by_site[site] += volume
                self.ases_by_site[site] += 1
        self.total_volume = sum(weights.values())
        self.total_ases = len(weights)
        self._entry_memo: Dict[str, Dict[int, int]] = {}

    # -- construction ----------------------------------------------------------

    @classmethod
    def compute(
        cls,
        service: AnycastService,
        population: ClientPopulation,
        outcome: Optional[RoutingOutcome] = None,
        observe: bool = True,
    ) -> "CatchmentMap":
        """Map ``population`` under the service's current steering.  The
        outcome is delta-chained off the previous steering state via
        :meth:`AnycastService.outcome` unless one is passed in."""
        if outcome is None:
            outcome = service.outcome()
        cmap = cls.from_outcome(service, population, outcome)
        if observe:
            cmap.observe(service)
        return cmap

    @classmethod
    def compute_many(
        cls,
        service: AnycastService,
        population: ClientPopulation,
        announcements: Sequence[Announcement],
        parallel: Optional[int] = None,
        use_cache: bool = True,
    ) -> List["CatchmentMap"]:
        """Map ``population`` under a batch of steering states in **one**
        batched ``propagate_many`` sweep — the engine partitions the
        batch into affinity chains and converges them through its delta
        regimes (in parallel with ``parallel=N``)."""
        outcomes = service.engine.propagate_many(
            announcements, parallel=parallel, use_cache=use_cache
        )
        return [
            cls.from_outcome(service, population, outcome)
            for outcome in outcomes
        ]

    @classmethod
    def from_outcome(
        cls,
        service: AnycastService,
        population: ClientPopulation,
        outcome: RoutingOutcome,
        prefer_arrays: bool = True,
    ) -> "CatchmentMap":
        """Map ``population`` against an already-converged ``outcome``.

        Compiled outcomes use the root-array fast path; anything else
        (or ``prefer_arrays=False``, the property tests' lever) recovers
        each client's site from its forwarding chain's entry uplink."""
        sites = service.active_site_names()
        origin_asn = service.asn
        assignment: Dict[int, str] = {}
        weights: Dict[int, int] = {}
        if prefer_arrays and isinstance(outcome, CompiledOutcome):
            index_of, kind, root, _plen = outcome.spec_table()
            for asn, volume in population.items():
                weights[asn] = weights.get(asn, 0) + volume
                i = index_of.get(asn)
                if i is None or not kind[i] or asn == origin_asn:
                    assignment[asn] = UNSERVED
                else:
                    assignment[asn] = sites[root[i]]
        else:
            uplink_site = service.uplink_site_index()
            for asn, volume in population.items():
                weights[asn] = weights.get(asn, 0) + volume
                assignment[asn] = _entry_site(
                    outcome, asn, origin_asn, uplink_site
                )
        return cls(sites, assignment, weights, outcome, origin_asn)

    # -- queries ---------------------------------------------------------------

    def site_of(self, asn: int) -> Optional[str]:
        """The site serving one client AS (:data:`UNSERVED` for mapped
        clients with no route; None for ASes outside the population)."""
        return self._assignment.get(asn)

    def volume_shares(self) -> Dict[str, float]:
        total = self.total_volume or 1
        return {s: self.volume_by_site[s] / total for s in self.sites}

    def as_shares(self) -> Dict[str, float]:
        total = self.total_ases or 1
        return {s: self.ases_by_site[s] / total for s in self.sites}

    @property
    def unserved_fraction(self) -> float:
        return self.unserved_volume / self.total_volume if self.total_volume else 0.0

    def observe(self, service: AnycastService) -> None:
        """Push this map's shares into the service's telemetry."""
        service.record_shares(self.volume_shares())

    def entry_volumes(self, site: str) -> Dict[int, int]:
        """``{uplink asn: client volume}`` for one site — which uplink
        each client's traffic enters the anycast origin through (the
        candidate set for poison / uplink-drop steering moves).  Walked
        from forwarding chains and memoized per map."""
        memo = self._entry_memo.get(site)
        if memo is not None:
            return memo
        volumes: Dict[int, int] = {}
        for asn, assigned in self._assignment.items():
            if assigned != site:
                continue
            chain = self._outcome.forwarding_chain(asn)
            if len(chain) >= 2 and chain[-1] == self._origin_asn:
                volumes[chain[-2]] = volumes.get(chain[-2], 0) + self._weights[asn]
        self._entry_memo[site] = volumes
        return volumes

    # -- stability -------------------------------------------------------------

    def diff(self, other: "CatchmentMap") -> CatchmentShift:
        """Stability report from ``self`` to ``other`` over the client
        ASes the two maps share."""
        flows: Dict[Tuple[str, str], int] = {}
        flipped_ases = 0
        flipped_volume = 0
        total = 0
        for asn, before in self._assignment.items():
            after = other._assignment.get(asn)
            if after is None:
                continue
            volume = self._weights[asn]
            total += volume
            if before == after:
                continue
            flipped_ases += 1
            flipped_volume += volume
            key = (before, after)
            flows[key] = flows.get(key, 0) + volume
        ordered = tuple(
            sorted(flows.items(), key=lambda kv: (-kv[1], kv[0]))
        )
        return CatchmentShift(
            flows=ordered,
            flipped_ases=flipped_ases,
            flipped_volume=flipped_volume,
            total_volume=total,
        )

    def render(self) -> List[str]:
        lines = [
            f"catchment: {self.total_volume} clients across "
            f"{self.total_ases} ASes, {len(self.sites)} sites"
        ]
        shares = self.volume_shares()
        for site in sorted(self.sites, key=lambda s: -self.volume_by_site[s]):
            lines.append(
                f"  {site}: {self.volume_by_site[site]} clients "
                f"({shares[site]:.1%}) across {self.ases_by_site[site]} ASes"
            )
        if self.unserved_volume:
            lines.append(
                f"  {UNSERVED}: {self.unserved_volume} clients "
                f"({self.unserved_fraction:.1%})"
            )
        return lines


def _entry_site(
    outcome: RoutingOutcome,
    asn: int,
    origin_asn: int,
    uplink_site: Dict[int, str],
) -> str:
    chain = outcome.forwarding_chain(asn)
    if len(chain) < 2 or chain[-1] != origin_asn:
        return UNSERVED
    return uplink_site.get(chain[-2], UNSERVED)
