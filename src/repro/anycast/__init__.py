"""Anycast deployments: multi-site services, population-scale catchment
mapping, and the closed-loop traffic engineer.

The PEERING §3 anycast story as a subsystem: :class:`AnycastService`
models one prefix announced from many sites with per-site steering
(prepend / poison / steering-community uplink selection);
:class:`CatchmentMap` maps millions of Zipf-weighted clients to sites in
one batched sweep over the compiled route table; and
:class:`TrafficEngineer` closes the loop, steering the catchment toward
per-site load targets while riding the engine's cheap delta regimes.
"""

from .catchment import UNSERVED, CatchmentMap, CatchmentShift
from .engineer import (
    EngineerConfig,
    IterationRecord,
    RebalanceReport,
    SteeringMove,
    TrafficEngineer,
)
from .service import ANYCAST_ASN, AnycastService, AnycastSite, SiteSteering

__all__ = [
    "ANYCAST_ASN",
    "AnycastService",
    "AnycastSite",
    "SiteSteering",
    "CatchmentMap",
    "CatchmentShift",
    "UNSERVED",
    "EngineerConfig",
    "IterationRecord",
    "RebalanceReport",
    "SteeringMove",
    "TrafficEngineer",
]
