"""The BGP decision process (RFC 4271 §9.1 plus the conventional
vendor-standard steps).

Given the candidate :class:`~repro.bgp.rib.Route` objects for one prefix,
:func:`best_path` returns them ranked best-first.  The tie-break ladder:

1. highest weight (local to the router, Cisco-style),
2. highest LOCAL_PREF (default 100 when unset),
3. best RPKI validation state (Valid < NotFound < Invalid, RFC 8481);
   unvalidated routes rank as NotFound, so the step is a no-op until an
   import policy or looking glass stamps ``Route.validation``,
4. locally-originated routes,
5. shortest AS_PATH (AS_SET counts as one),
6. lowest ORIGIN (IGP < EGP < INCOMPLETE),
7. lowest MED — compared only between routes from the same neighbor AS
   unless ``always_compare_med``; missing MED treated as 0,
8. eBGP over iBGP,
9. lowest IGP metric to the next hop,
10. oldest route (stability preference; optional, on by default),
11. lowest peer identifier (router-id stand-in) then path id.
"""

from __future__ import annotations

from functools import cmp_to_key
from typing import List, Optional, Sequence, Tuple

from ..secroute.rpki import ValidationState
from .rib import Route

__all__ = ["best_path", "select_best", "DEFAULT_LOCAL_PREF"]

DEFAULT_LOCAL_PREF = 100


def _local_pref(route: Route) -> int:
    value = route.attributes.local_pref
    return DEFAULT_LOCAL_PREF if value is None else value


def _validation_rank(route: Route) -> int:
    state = route.validation
    return ValidationState.NOT_FOUND.rank if state is None else state.rank


def _med(route: Route) -> int:
    return route.attributes.med or 0


def _compare(a: Route, b: Route, always_compare_med: bool, prefer_oldest: bool) -> int:
    """Negative when ``a`` is better."""
    if a.weight != b.weight:
        return b.weight - a.weight
    if _local_pref(a) != _local_pref(b):
        return _local_pref(b) - _local_pref(a)
    if _validation_rank(a) != _validation_rank(b):
        return _validation_rank(a) - _validation_rank(b)
    if a.local != b.local:
        return -1 if a.local else 1
    alen, blen = a.attributes.as_path.length(), b.attributes.as_path.length()
    if alen != blen:
        return alen - blen
    if a.attributes.origin != b.attributes.origin:
        return int(a.attributes.origin) - int(b.attributes.origin)
    same_neighbor = (
        a.attributes.as_path.first_asn is not None
        and a.attributes.as_path.first_asn == b.attributes.as_path.first_asn
    )
    if (always_compare_med or same_neighbor) and _med(a) != _med(b):
        return _med(a) - _med(b)
    if a.ebgp != b.ebgp:
        return -1 if a.ebgp else 1
    if a.igp_metric != b.igp_metric:
        return a.igp_metric - b.igp_metric
    if prefer_oldest and a.learned_at != b.learned_at:
        return -1 if a.learned_at < b.learned_at else 1
    if a.peer_id != b.peer_id:
        return -1 if a.peer_id < b.peer_id else 1
    apid = -1 if a.path_id is None else a.path_id
    bpid = -1 if b.path_id is None else b.path_id
    return apid - bpid


def best_path(
    candidates: Sequence[Route],
    always_compare_med: bool = False,
    prefer_oldest: bool = True,
) -> List[Route]:
    """Rank ``candidates`` best-first.  Empty input gives an empty list.

    Routes whose next hop is unusable should be filtered by the caller
    before ranking (the router does this when it knows reachability).

    Conditional MED (step 6) makes naive pairwise comparison intransitive
    — A can beat B on MED while both fall through to later steps against
    C — so a plain comparison sort oscillates with input order.  We rank
    deterministic-MED style instead: routes are grouped by neighbor AS,
    each group is ordered with MED in force (always comparable within a
    group), and the group heads are merged with the MED step skipped
    (never comparable across groups).  Both phases use transitive
    comparators, so the ranking is independent of candidate order.
    """
    routes = list(candidates)
    if len(routes) <= 1:
        return routes
    key = cmp_to_key(
        lambda a, b: _compare(a, b, always_compare_med, prefer_oldest)
    )
    if always_compare_med:
        # MED applies to every pair; the ladder is fully transitive.
        return sorted(routes, key=key)
    pools: List[List[Route]] = []
    by_neighbor: dict = {}
    for route in routes:
        asn = route.attributes.as_path.first_asn
        if asn is None:
            # MED is never compared against a route with an empty path;
            # each such route merges as its own group.
            pools.append([route])
        else:
            group = by_neighbor.get(asn)
            if group is None:
                group = by_neighbor[asn] = []
                pools.append(group)
            group.append(route)
    for group in pools:
        group.sort(key=key)
    ranked: List[Route] = []
    while pools:
        index = min(range(len(pools)), key=lambda i: key(pools[i][0]))
        ranked.append(pools[index].pop(0))
        if not pools[index]:
            pools.pop(index)
    return ranked


def select_best(
    candidates: Sequence[Route],
    always_compare_med: bool = False,
    prefer_oldest: bool = True,
) -> Tuple[Optional[Route], List[Route]]:
    """Return ``(best, ranked_all)`` for one prefix's candidates."""
    ranked = best_path(candidates, always_compare_med, prefer_oldest)
    return (ranked[0] if ranked else None), ranked
