"""BGP path attributes: AS paths, origin, communities, and the bundle.

:class:`ASPath` models the segmented structure from RFC 4271 (AS_SEQUENCE /
AS_SET) with the operations experiments need: prepending, private-ASN
stripping (what a PEERING mux does before routes reach the Internet),
poisoning checks (loop detection is how poisoning works), and aggregate
length (AS_SET counts as one).

:class:`PathAttributes` is the immutable bundle attached to a route.  The
helper constructors keep call sites terse.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import IntEnum
from typing import FrozenSet, Iterable, Optional, Sequence, Tuple

from ..net.addr import IPAddress

__all__ = [
    "Origin",
    "SegmentType",
    "ASPathSegment",
    "ASPath",
    "Community",
    "WELL_KNOWN_COMMUNITIES",
    "NO_EXPORT",
    "NO_ADVERTISE",
    "PathAttributes",
    "is_private_asn",
]

# RFC 6996 private ASN ranges (16-bit and 32-bit).
_PRIVATE_16 = range(64512, 65535)
_PRIVATE_32 = range(4200000000, 4294967295)


def is_private_asn(asn: int) -> bool:
    """True for RFC 6996 private-use ASNs."""
    return asn in _PRIVATE_16 or asn in _PRIVATE_32


class Origin(IntEnum):
    """ORIGIN attribute; lower is preferred in the decision process."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2


class SegmentType(IntEnum):
    AS_SET = 1
    AS_SEQUENCE = 2


@dataclass(frozen=True)
class ASPathSegment:
    kind: SegmentType
    asns: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.asns:
            raise ValueError("empty AS path segment")
        if self.kind == SegmentType.AS_SET:
            # Canonicalize sets: sorted, deduplicated.
            object.__setattr__(self, "asns", tuple(sorted(set(self.asns))))

    def path_length(self) -> int:
        """Decision-process length contribution: an AS_SET counts as 1."""
        return 1 if self.kind == SegmentType.AS_SET else len(self.asns)

    def __str__(self) -> str:
        inner = " ".join(str(a) for a in self.asns)
        if self.kind == SegmentType.AS_SET:
            return "{" + inner.replace(" ", ",") + "}"
        return inner


@dataclass(frozen=True)
class ASPath:
    """A full AS_PATH as a tuple of segments."""

    segments: Tuple[ASPathSegment, ...] = ()

    @classmethod
    def from_asns(cls, asns: Iterable[int]) -> "ASPath":
        """Build a single AS_SEQUENCE path (the overwhelmingly common case)."""
        asns = tuple(asns)
        if not asns:
            return cls()
        return cls((ASPathSegment(SegmentType.AS_SEQUENCE, asns),))

    def prepend(self, asn: int, count: int = 1) -> "ASPath":
        """Prepend ``asn`` ``count`` times (what a router does on export)."""
        if count < 1:
            raise ValueError("prepend count must be >= 1")
        head = (asn,) * count
        if self.segments and self.segments[0].kind == SegmentType.AS_SEQUENCE:
            first = ASPathSegment(
                SegmentType.AS_SEQUENCE, head + self.segments[0].asns
            )
            return ASPath((first,) + self.segments[1:])
        return ASPath((ASPathSegment(SegmentType.AS_SEQUENCE, head),) + self.segments)

    def contains(self, asn: int) -> bool:
        """Loop detection — also the mechanism AS-path poisoning exploits."""
        return any(asn in segment.asns for segment in self.segments)

    def strip(self, predicate) -> "ASPath":
        """Remove every ASN for which ``predicate`` holds (e.g. private ASNs)."""
        segments = []
        for segment in self.segments:
            kept = tuple(a for a in segment.asns if not predicate(a))
            if kept:
                segments.append(ASPathSegment(segment.kind, kept))
        return ASPath(tuple(segments))

    def strip_private(self) -> "ASPath":
        """Drop RFC 6996 private ASNs — the mux operation from §3."""
        return self.strip(is_private_asn)

    def length(self) -> int:
        return sum(segment.path_length() for segment in self.segments)

    def asns(self) -> Tuple[int, ...]:
        """Every ASN appearing anywhere in the path, in order."""
        result: Tuple[int, ...] = ()
        for segment in self.segments:
            result += segment.asns
        return result

    @property
    def origin_asn(self) -> Optional[int]:
        """The originating AS (last ASN of the last sequence), or None."""
        for segment in reversed(self.segments):
            if segment.kind == SegmentType.AS_SEQUENCE:
                return segment.asns[-1]
        return None

    @property
    def first_asn(self) -> Optional[int]:
        """The neighbor AS that sent this path (first ASN), or None."""
        for segment in self.segments:
            if segment.kind == SegmentType.AS_SEQUENCE:
                return segment.asns[0]
        return None

    def __str__(self) -> str:
        return " ".join(str(segment) for segment in self.segments) or "(empty)"

    def __len__(self) -> int:
        return self.length()


@dataclass(frozen=True, order=True)
class Community:
    """An RFC 1997 community, ``ASN:value``."""

    asn: int
    value: int

    @classmethod
    def parse(cls, text: str) -> "Community":
        head, _, tail = text.partition(":")
        try:
            return cls(int(head), int(tail))
        except ValueError:
            raise ValueError(f"invalid community {text!r}") from None

    def packed(self) -> int:
        return (self.asn << 16) | self.value

    @classmethod
    def from_packed(cls, value: int) -> "Community":
        return cls((value >> 16) & 0xFFFF, value & 0xFFFF)

    def __str__(self) -> str:
        return f"{self.asn}:{self.value}"


NO_EXPORT = Community(0xFFFF, 0xFF01)
NO_ADVERTISE = Community(0xFFFF, 0xFF02)
WELL_KNOWN_COMMUNITIES = {
    "no-export": NO_EXPORT,
    "no-advertise": NO_ADVERTISE,
}


@dataclass(frozen=True)
class PathAttributes:
    """The attribute bundle carried with a route.

    ``local_pref`` is optional (only meaningful within an AS); ``med`` is
    optional; ``communities`` is a frozenset so bundles stay hashable.
    """

    origin: Origin = Origin.IGP
    as_path: ASPath = field(default_factory=ASPath)
    next_hop: Optional[IPAddress] = None
    med: Optional[int] = None
    local_pref: Optional[int] = None
    communities: FrozenSet[Community] = frozenset()
    atomic_aggregate: bool = False
    aggregator: Optional[Tuple[int, IPAddress]] = None
    # RFC 4456 route reflection:
    originator_id: Optional[IPAddress] = None
    cluster_list: Tuple[int, ...] = ()

    def with_path(self, as_path: ASPath) -> "PathAttributes":
        return replace(self, as_path=as_path)

    def prepended(self, asn: int, count: int = 1) -> "PathAttributes":
        return replace(self, as_path=self.as_path.prepend(asn, count))

    def with_next_hop(self, next_hop: IPAddress) -> "PathAttributes":
        return replace(self, next_hop=next_hop)

    def with_local_pref(self, local_pref: Optional[int]) -> "PathAttributes":
        return replace(self, local_pref=local_pref)

    def with_med(self, med: Optional[int]) -> "PathAttributes":
        return replace(self, med=med)

    def with_communities(self, communities: Iterable[Community]) -> "PathAttributes":
        return replace(self, communities=frozenset(communities))

    def add_communities(self, communities: Iterable[Community]) -> "PathAttributes":
        return replace(self, communities=self.communities | frozenset(communities))

    def has_community(self, community: Community) -> bool:
        return community in self.communities

    def reflected(self, originator: IPAddress, cluster_id: int) -> "PathAttributes":
        """Stamp RFC 4456 reflection state before re-advertising an iBGP route."""
        return replace(
            self,
            originator_id=self.originator_id or originator,
            cluster_list=(cluster_id,) + self.cluster_list,
        )

    def __str__(self) -> str:
        parts = [f"path={self.as_path}", f"origin={self.origin.name}"]
        if self.next_hop is not None:
            parts.append(f"nh={self.next_hop}")
        if self.local_pref is not None:
            parts.append(f"lp={self.local_pref}")
        if self.med is not None:
            parts.append(f"med={self.med}")
        if self.communities:
            parts.append("comm=" + ",".join(str(c) for c in sorted(self.communities)))
        return " ".join(parts)
