"""Route-flap damping (RFC 2439).

PEERING servers apply flap damping to client announcements so a misbehaving
experiment cannot subject real peers to an update storm (§3 "Enforcing
safety").  The implementation follows the RFC's figure-of-merit model:

* each (peer, prefix) accumulates a penalty on withdrawal (1000),
  re-announcement (500), and attribute change (500);
* the penalty decays exponentially with a configurable half-life;
* when the penalty crosses ``suppress_threshold`` the route is suppressed;
  it is reused once the decayed penalty falls below ``reuse_threshold``;
* the penalty is capped so a route is never suppressed longer than
  ``max_suppress_time``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..net.addr import Prefix

__all__ = ["DampeningConfig", "FlapState", "RouteFlapDamper"]

PENALTY_WITHDRAWAL = 1000.0
PENALTY_REANNOUNCE = 500.0
PENALTY_ATTRIBUTE_CHANGE = 500.0


@dataclass(frozen=True)
class DampeningConfig:
    """Standard defaults match common vendor settings."""

    half_life: float = 900.0  # seconds (15 min)
    suppress_threshold: float = 2000.0
    reuse_threshold: float = 750.0
    max_suppress_time: float = 3600.0  # seconds (60 min)

    def __post_init__(self) -> None:
        if self.half_life <= 0:
            raise ValueError("half_life must be positive")
        if self.reuse_threshold >= self.suppress_threshold:
            raise ValueError("reuse threshold must be below suppress threshold")

    @property
    def decay_rate(self) -> float:
        return math.log(2) / self.half_life

    @property
    def penalty_ceiling(self) -> float:
        """Max penalty such that decay to reuse takes max_suppress_time.

        The exponent is clamped so a short half-life with a long
        max-suppress window cannot overflow ``exp``; the ceiling is then
        effectively "unbounded" which is the right degenerate behaviour.
        """
        exponent = min(self.decay_rate * self.max_suppress_time, 64.0)
        return self.reuse_threshold * math.exp(exponent)


@dataclass
class FlapState:
    penalty: float = 0.0
    last_update: float = 0.0
    suppressed: bool = False
    flaps: int = 0

    def decayed_penalty(self, now: float, config: DampeningConfig) -> float:
        elapsed = max(0.0, now - self.last_update)
        return self.penalty * math.exp(-config.decay_rate * elapsed)


class RouteFlapDamper:
    """Tracks flap penalties per (peer, prefix) key.

    Usage: call :meth:`record_withdrawal` / :meth:`record_announcement` /
    :meth:`record_attribute_change` as events arrive; consult
    :meth:`is_suppressed` before propagating.
    """

    def __init__(self, config: Optional[DampeningConfig] = None) -> None:
        self.config = config or DampeningConfig()
        self._state: Dict[Tuple[str, Prefix], FlapState] = {}

    def _bump(self, key: Tuple[str, Prefix], penalty: float, now: float) -> FlapState:
        state = self._state.setdefault(key, FlapState(last_update=now))
        state.penalty = min(
            state.decayed_penalty(now, self.config) + penalty,
            self.config.penalty_ceiling,
        )
        state.last_update = now
        state.flaps += 1
        if state.penalty >= self.config.suppress_threshold:
            state.suppressed = True
        return state

    def record_withdrawal(self, peer: str, prefix: Prefix, now: float) -> bool:
        """Returns True if the route is now suppressed."""
        self._bump((peer, prefix), PENALTY_WITHDRAWAL, now)
        return self.is_suppressed(peer, prefix, now)

    def record_announcement(self, peer: str, prefix: Prefix, now: float) -> bool:
        """A re-announcement after withdrawal; returns suppression status."""
        key = (peer, prefix)
        if key not in self._state:
            # First announcement ever: no penalty, never suppressed.
            self._state[key] = FlapState(last_update=now)
            return False
        self._bump(key, PENALTY_REANNOUNCE, now)
        return self.is_suppressed(peer, prefix, now)

    def reset_peer(self, peer: str) -> int:
        """Drop every damping entry for one peer (quarantine release: a
        re-admitted client starts with a clean penalty slate).  Returns
        the number of entries cleared."""
        keys = [key for key in self._state if key[0] == peer]
        for key in keys:
            del self._state[key]
        return len(keys)

    def record_attribute_change(self, peer: str, prefix: Prefix, now: float) -> bool:
        self._bump((peer, prefix), PENALTY_ATTRIBUTE_CHANGE, now)
        return self.is_suppressed(peer, prefix, now)

    def _refresh(self, key: Tuple[str, Prefix], now: float) -> bool:
        """Apply decay; un-suppress when below reuse threshold.  Returns
        True when the entry transitioned to reusable."""
        state = self._state.get(key)
        if state is None:
            return True
        current = state.decayed_penalty(now, self.config)
        state.penalty = current
        state.last_update = now
        if state.suppressed and current < self.config.reuse_threshold:
            state.suppressed = False
            return True
        if current < 1.0 and not state.suppressed:
            # Fully decayed: forget the entry to bound memory.
            del self._state[key]
        return False

    def is_suppressed(self, peer: str, prefix: Prefix, now: float) -> bool:
        key = (peer, prefix)
        state = self._state.get(key)
        if state is None:
            return False
        self._refresh(key, now)
        state = self._state.get(key)
        return state.suppressed if state is not None else False

    def penalty(self, peer: str, prefix: Prefix, now: float) -> float:
        state = self._state.get((peer, prefix))
        return 0.0 if state is None else state.decayed_penalty(now, self.config)

    def flap_count(self, peer: str, prefix: Prefix) -> int:
        state = self._state.get((peer, prefix))
        return 0 if state is None else state.flaps

    def reuse_time(self, peer: str, prefix: Prefix, now: float) -> float:
        """Seconds until the route becomes reusable (0 if not suppressed)."""
        state = self._state.get((peer, prefix))
        if state is None or not state.suppressed:
            return 0.0
        current = state.decayed_penalty(now, self.config)
        if current <= self.config.reuse_threshold:
            return 0.0
        return math.log(current / self.config.reuse_threshold) / self.config.decay_rate

    def tracked(self) -> int:
        return len(self._state)
