"""A BGP session: FSM + timers + codec over a message channel.

:class:`BGPSession` drives one peering.  It encodes/decodes real message
bytes (via :mod:`repro.bgp.messages`), negotiates capabilities (4-octet AS
always; ADD-PATH and graceful restart when both sides configure them),
runs keepalive and hold timers on the discrete-event engine, and hands
decoded UPDATEs to its owner through the ``on_update`` callback.

Sessions come in pairs over a :class:`~repro.net.channel.ChannelPair`; the
convenience function :func:`connect` wires two sessions together and
starts them.

Self-healing: with ``auto_reconnect`` enabled, a session that loses its
transport (or its hold timer) arms an RFC 4271-style IdleHold timer with
exponential backoff and seeded jitter, then re-establishes automatically.
A ``transport_factory`` callback supplies fresh transports after the old
channel is severed (set by :class:`repro.faults.Link`, the mux failover
path in :mod:`repro.core`, or any other owner); returning ``None`` counts
a ConnectRetry failure and backs off further.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..net.addr import IPAddress, Prefix
from ..net.channel import ChannelClosed, Endpoint
from ..sim.engine import Engine, Timer
from .attributes import PathAttributes
from .errors import BGPError, ErrorCode, OpenError, OpenSub
from .fsm import BGPStateMachine, FsmEvent, State
from .messages import (
    AddPathDirection,
    Capability,
    CapabilityCode,
    KeepaliveMessage,
    NotificationMessage,
    OpenMessage,
    RouteRefreshMessage,
    UpdateMessage,
    decode,
)

__all__ = ["SessionConfig", "BGPSession", "connect"]

DEFAULT_HOLD_TIME = 90
KEEPALIVE_FRACTION = 3  # keepalive = hold / 3, per convention
OPEN_HOLD_TIME = 240.0  # RFC 4271 suggested OpenSent hold when none configured
DEFAULT_IDLE_HOLD_TIME = 5.0
DEFAULT_IDLE_HOLD_MAX = 300.0
DEFAULT_RESTART_TIME = 120

# States in which the session is actively opening or open; a pending
# automatic restart is redundant (or harmful) once any of these is reached.
_IN_SESSION = (State.OPEN_SENT, State.OPEN_CONFIRM, State.ESTABLISHED)


@dataclass
class SessionConfig:
    """Static configuration for one side of a session."""

    local_asn: int
    peer_asn: int
    local_id: IPAddress
    hold_time: int = DEFAULT_HOLD_TIME
    add_path: bool = False
    passive: bool = False
    # Self-healing knobs.  ``auto_reconnect`` re-establishes after any
    # non-administrative teardown; IdleHold grows exponentially from
    # ``idle_hold_time`` up to ``idle_hold_max`` with 75-100% jitter.
    auto_reconnect: bool = False
    idle_hold_time: float = DEFAULT_IDLE_HOLD_TIME
    idle_hold_max: float = DEFAULT_IDLE_HOLD_MAX
    # RFC 4724-style graceful restart: advertise the capability and, when
    # both sides do, the peer retains our routes (stale-marked) for up to
    # ``restart_time`` seconds across a session bounce.
    graceful_restart: bool = False
    restart_time: int = DEFAULT_RESTART_TIME
    description: str = ""

    def capabilities(self) -> List[Capability]:
        caps = [
            Capability.multiprotocol(),
            Capability.four_octet_as(self.local_asn),
            Capability(CapabilityCode.ROUTE_REFRESH),
        ]
        if self.add_path:
            caps.append(Capability.add_path(AddPathDirection.BOTH))
        if self.graceful_restart:
            caps.append(Capability.graceful_restart(self.restart_time))
        return caps


class BGPSession:
    """One side of a BGP peering over a message channel.

    Callbacks (all optional):

    * ``on_update(session, UpdateMessage)`` — a decoded UPDATE arrived.
    * ``on_established(session)`` — the session reached ESTABLISHED.
    * ``on_down(session, reason)`` — the session left ESTABLISHED.
    * ``on_route_refresh(session)`` — peer asked for re-advertisement.

    ``transport_factory`` — optional callable returning a fresh connected
    :class:`Endpoint` (or ``None`` if none is available yet); consulted
    when (re)establishing after transport loss.
    """

    def __init__(
        self,
        engine: Engine,
        config: SessionConfig,
        endpoint: Optional[Endpoint] = None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.endpoint: Optional[Endpoint] = None
        self.fsm = BGPStateMachine()
        self._backlog: List[bytes] = []
        if endpoint is not None:
            self._bind(endpoint)

        self.on_update: Optional[Callable[["BGPSession", UpdateMessage], None]] = None
        self.on_established: Optional[Callable[["BGPSession"], None]] = None
        self.on_down: Optional[Callable[["BGPSession", str], None]] = None
        self.on_route_refresh: Optional[Callable[["BGPSession"], None]] = None
        self.transport_factory: Optional[Callable[[], Optional[Endpoint]]] = None
        # Passive monitoring taps (e.g. repro.telemetry's BMP-style route
        # monitor): called with ("established"|"down"|"update-received",
        # update-or-None) *before* the owner callbacks, so the wire view
        # is recorded even if a handler raises.  Taps observe; they must
        # not drive the session.
        self.taps: List[
            Callable[["BGPSession", str, Optional[UpdateMessage]], None]
        ] = []

        self.negotiated_hold_time = config.hold_time
        self.add_path_active = False
        self.gr_active = False
        self.peer_restart_time: Optional[int] = None
        self.peer_open: Optional[OpenMessage] = None

        self._hold_timer: Timer = engine.timer(
            max(1, config.hold_time), self._hold_expired, label=f"hold:{config.description}"
        )
        self._keepalive_timer: Timer = engine.timer(
            max(1, config.hold_time // KEEPALIVE_FRACTION),
            self._send_keepalive,
            label=f"keepalive:{config.description}",
        )
        self._idle_hold_timer: Timer = engine.timer(
            config.idle_hold_time,
            self._idle_hold_expired,
            label=f"idlehold:{config.description}",
        )
        self._rng = engine.rng(f"session:{config.description}")

        self.updates_sent = 0
        self.updates_received = 0
        self.established_count = 0
        self.reconnect_attempts = 0  # automatic restart attempts
        self.connect_retry_count = 0  # failed transport acquisitions
        self.backoff_level = 0
        self.reconnect_log: List[Tuple[float, float]] = []  # (scheduled at, delay)
        self.last_error: Optional[str] = None
        self.last_down_graceful = False

    # -- transport binding ---------------------------------------------------

    def _bind(self, endpoint: Endpoint) -> None:
        self.endpoint = endpoint
        endpoint.on_receive = self._on_bytes
        endpoint.on_close = self._on_channel_close
        # Messages that arrived before this session attached (e.g. the
        # remote side opened first) sit in the endpoint queue; take them.
        self._backlog = endpoint.drain()

    def rebind(self, endpoint: Endpoint) -> None:
        """Attach to a fresh transport (after the old one was severed).

        Only legal while not in session; anything the peer already sent on
        the new channel is replayed immediately, so a waiting peer's OPEN
        implicit-starts this side.
        """
        if self.fsm.state in _IN_SESSION:
            raise BGPError(
                f"cannot rebind session {self.config.description!r} "
                f"in state {self.fsm.state.name}"
            )
        old = self.endpoint
        if old is not None and old is not endpoint:
            old.on_receive = None
            old.on_close = None
        self._bind(endpoint)
        self._replay_backlog()

    def _replay_backlog(self) -> None:
        backlog, self._backlog = self._backlog, []
        for message in backlog:
            # Through the channel's run-to-completion context, so replies
            # we send mid-replay queue behind the replayed message instead
            # of re-entering the peer's handlers out of order.
            if self.endpoint is not None:
                self.endpoint.redeliver(message)
            else:  # pragma: no cover - backlog implies a bound endpoint
                self._on_bytes(message)

    def _acquire_transport(self) -> Optional[Endpoint]:
        """Current endpoint if usable, else ask the factory for a new one."""
        if self.endpoint is not None and self.endpoint.connected:
            return self.endpoint
        if self.transport_factory is None:
            return None
        endpoint = self.transport_factory()
        if endpoint is None or not endpoint.connected:
            return None
        self.rebind(endpoint)
        return endpoint

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Begin session establishment (send OPEN unless passive)."""
        # Replay anything the peer sent before we attached to the channel:
        # its OPEN lands while we are IDLE and triggers the implicit-start
        # path, preserving message ordering.
        self._replay_backlog()
        if self.fsm.state != State.IDLE:
            return  # already started (e.g. implicitly by the peer's OPEN)
        self.fsm.fire(FsmEvent.MANUAL_START)
        endpoint = self._acquire_transport()
        if self.fsm.state in _IN_SESSION:
            return  # the new transport's backlog completed the handshake
        if endpoint is None or not endpoint.connected:
            self.connect_retry_count += 1
            self.fsm.fire(FsmEvent.TRANSPORT_FAILED)
            if self.config.auto_reconnect:
                self._schedule_reconnect()
            return
        self.fsm.fire(FsmEvent.TRANSPORT_CONNECTED)
        self._send_open()

    def stop(self, reason: str = "administrative shutdown") -> None:
        """Administratively stop; sends CEASE if the channel is up.

        An administrative stop cancels any pending automatic restart and
        closes the transport, so the peer observes the loss immediately
        instead of holding a half-open channel until its own hold timer.
        """
        self._idle_hold_timer.stop()
        if self.fsm.state == State.IDLE:
            if self.endpoint is not None:
                self.endpoint.close()
            return
        was_established = self.fsm.established
        try:
            self._send(NotificationMessage(ErrorCode.CEASE, 2).encode())
        except ChannelClosed:
            pass
        self.fsm.fire(FsmEvent.MANUAL_STOP)
        self._teardown(reason, was_established, graceful=False, reconnect=False)
        if self.endpoint is not None:
            self.endpoint.close()

    def drop(self, reason: str = "transport dropped") -> None:
        """Abruptly kill the transport — no CEASE, no courtesy.

        This is what a supervisor does to a session it no longer trusts
        (and what a crashing process does to all of them): the peer sees
        plain transport loss, so graceful-restart semantics apply on its
        side rather than the explicit-shutdown path of :meth:`stop`.
        """
        if self.endpoint is not None and not self.endpoint.closed:
            self.endpoint.close()  # on_close fires _transport_lost locally too
        elif self.fsm.state is not State.IDLE:
            self._transport_lost()

    @property
    def established(self) -> bool:
        return self.fsm.established

    def _notify_taps(
        self, event: str, update: Optional[UpdateMessage] = None
    ) -> None:
        for tap in self.taps:
            tap(self, event, update)

    # -- sending -----------------------------------------------------------

    def announce(
        self,
        prefixes: Sequence[Prefix],
        attributes: PathAttributes,
        path_ids: Optional[Sequence[int]] = None,
    ) -> None:
        """Send an UPDATE announcing ``prefixes`` with ``attributes``."""
        if path_ids is not None and not self.add_path_active:
            raise BGPError("path_ids supplied but ADD-PATH not negotiated")
        update = UpdateMessage.announce(prefixes, attributes, path_ids=path_ids)
        self.send_update(update)

    def withdraw(
        self, prefixes: Sequence[Prefix], path_ids: Optional[Sequence[int]] = None
    ) -> None:
        if path_ids is not None and not self.add_path_active:
            raise BGPError("path_ids supplied but ADD-PATH not negotiated")
        self.send_update(UpdateMessage.withdraw(prefixes, path_ids=path_ids))

    def send_update(self, update: UpdateMessage) -> None:
        if not self.fsm.established:
            raise BGPError(f"session {self.config.description!r} not established")
        self._send(update.encode())
        self.updates_sent += 1
        if self.negotiated_hold_time > 0:
            self._keepalive_timer.start()

    def send_end_of_rib(self) -> None:
        """Send the RFC 4724 End-of-RIB marker (an empty UPDATE)."""
        self.send_update(UpdateMessage.end_of_rib())

    def request_refresh(self) -> None:
        if not self.fsm.established:
            raise BGPError("cannot refresh a down session")
        self._send(RouteRefreshMessage().encode())

    def _send(self, data: bytes) -> None:
        if self.endpoint is None:
            raise ChannelClosed(
                f"session {self.config.description!r} has no transport"
            )
        self.endpoint.send(data)

    def _send_open(self) -> None:
        open_msg = OpenMessage(
            asn=self.config.local_asn,
            hold_time=self.config.hold_time,
            bgp_id=self.config.local_id,
            capabilities=tuple(self.config.capabilities()),
        )
        # RFC 4271 §8.2.2: entering OpenSent arms the hold timer with a
        # large value, so a lost OPEN (or a peer that never answers) trips
        # HOLD_TIMER_EXPIRED instead of wedging the session forever.  Armed
        # *before* sending: channel dispatch can complete the whole
        # handshake (which renegotiates or disarms the timer) inside the
        # send call.
        self._hold_timer.start(self.config.hold_time or OPEN_HOLD_TIME)
        self._send(open_msg.encode())

    def _send_keepalive(self) -> None:
        if self.fsm.state in (State.OPEN_CONFIRM, State.ESTABLISHED):
            try:
                self._send(KeepaliveMessage().encode())
            except ChannelClosed:
                self._transport_lost()
                return
            self._keepalive_timer.start()

    # -- receiving ---------------------------------------------------------

    def _on_bytes(self, data: bytes) -> None:
        try:
            message = decode(data, add_path=self.add_path_active)
        except BGPError as error:
            self._protocol_error(error)
            return
        try:
            self._dispatch(message)
        except BGPError as error:
            self._protocol_error(error)

    def _dispatch(self, message) -> None:
        if isinstance(message, OpenMessage):
            self._handle_open(message)
        elif isinstance(message, KeepaliveMessage):
            self._handle_keepalive()
        elif isinstance(message, UpdateMessage):
            self._handle_update(message)
        elif isinstance(message, NotificationMessage):
            self._handle_notification(message)
        elif isinstance(message, RouteRefreshMessage):
            if self.fsm.established and self.on_route_refresh is not None:
                self.on_route_refresh(self)

    def _handle_open(self, message: OpenMessage) -> None:
        if self.fsm.state in (State.IDLE, State.CONNECT, State.ACTIVE):
            # Not yet actively opening (passive side, a restart awaiting
            # transport, or the other side of a simultaneous open): the
            # peer's OPEN triggers ours.
            if self.fsm.state == State.IDLE:
                self.fsm.fire(FsmEvent.MANUAL_START)
            self.fsm.fire(FsmEvent.TRANSPORT_CONNECTED)
            self._send_open()
        if self.fsm.state != State.OPEN_SENT:
            raise BGPError("OPEN in unexpected state")
        if message.real_asn != self.config.peer_asn:
            self.fsm.fire(FsmEvent.OPEN_INVALID)
            notification = NotificationMessage(ErrorCode.OPEN_MESSAGE, OpenSub.BAD_PEER_AS)
            try:
                self._send(notification.encode())
            except ChannelClosed:
                pass
            self._teardown(f"bad peer AS {message.real_asn}", False, graceful=False)
            return
        self.peer_open = message
        self.negotiated_hold_time = min(self.config.hold_time, message.hold_time)
        self.add_path_active = self.config.add_path and message.supports_add_path
        self.gr_active = (
            self.config.graceful_restart and message.supports_graceful_restart
        )
        self.peer_restart_time = message.graceful_restart_time
        self.fsm.fire(FsmEvent.OPEN_RECEIVED)
        self._send(KeepaliveMessage().encode())
        # RFC 4271: a negotiated hold time of zero means no hold timer and
        # no periodic keepalives at all.
        if self.negotiated_hold_time > 0:
            self._hold_timer.start(self.negotiated_hold_time)
            self._keepalive_timer.start(max(1, self.negotiated_hold_time // KEEPALIVE_FRACTION))
        else:
            # Hold time negotiated to zero: disarm the OpenSent hold.
            self._hold_timer.stop()

    def _handle_keepalive(self) -> None:
        if self.fsm.state == State.OPEN_CONFIRM:
            self.fsm.fire(FsmEvent.KEEPALIVE_RECEIVED)
            self.established_count += 1
            self.backoff_level = 0  # healthy again: reset the backoff ladder
            if self.taps:
                self._notify_taps("established")
            if self.on_established is not None:
                self.on_established(self)
        elif self.fsm.state == State.ESTABLISHED:
            self.fsm.fire(FsmEvent.KEEPALIVE_RECEIVED)
        else:
            raise BGPError("KEEPALIVE in unexpected state")
        if self.negotiated_hold_time > 0:
            self._hold_timer.start(self.negotiated_hold_time)

    def _handle_update(self, message: UpdateMessage) -> None:
        if not self.fsm.established:
            raise BGPError("UPDATE before ESTABLISHED")
        self.fsm.fire(FsmEvent.UPDATE_RECEIVED)
        self.updates_received += 1
        if self.negotiated_hold_time > 0:
            self._hold_timer.start(self.negotiated_hold_time)
        if self.taps:
            self._notify_taps("update-received", message)
        if self.on_update is not None:
            self.on_update(self, message)

    def _handle_notification(self, message: NotificationMessage) -> None:
        was_established = self.fsm.established
        self.fsm.fire(FsmEvent.NOTIFICATION_RECEIVED)
        self._teardown(str(message), was_established, graceful=False)

    # -- failure paths -------------------------------------------------------

    def _hold_expired(self) -> None:
        was_established = self.fsm.established
        try:
            self._send(
                NotificationMessage(ErrorCode.HOLD_TIMER_EXPIRED).encode()
            )
        except ChannelClosed:
            pass
        self.fsm.fire(FsmEvent.HOLD_TIMER_EXPIRED)
        self._teardown("hold timer expired", was_established, graceful=True)

    def _protocol_error(self, error: BGPError) -> None:
        was_established = self.fsm.established
        try:
            self._send(NotificationMessage(error.code, error.subcode).encode())
        except ChannelClosed:
            pass
        if self.fsm.state != State.IDLE:
            self.fsm.fire(FsmEvent.MANUAL_STOP)
        self._teardown(f"protocol error: {error}", was_established, graceful=False)

    def _on_channel_close(self) -> None:
        self._transport_lost()

    def _transport_lost(self) -> None:
        if self.fsm.state == State.IDLE:
            # Between retries (or never started): the backoff timer, if
            # armed, already covers recovery.
            return
        was_established = self.fsm.established
        self.fsm.fire(FsmEvent.TRANSPORT_FAILED)
        self._teardown("transport lost", was_established, graceful=True)

    def _teardown(
        self,
        reason: str,
        was_established: bool,
        *,
        graceful: bool = False,
        reconnect: bool = True,
    ) -> None:
        self.last_error = reason
        # Graceful (RFC 4724) route retention applies to transport loss and
        # hold-timer expiry, not to administrative stops or protocol errors.
        self.last_down_graceful = graceful and self.gr_active
        self._hold_timer.stop()
        self._keepalive_timer.stop()
        if was_established and self.taps:
            self._notify_taps("down")
        if was_established and self.on_down is not None:
            self.on_down(self, reason)
        if reconnect and self.config.auto_reconnect:
            self._schedule_reconnect()

    # -- automatic restart ---------------------------------------------------

    def _schedule_reconnect(self) -> None:
        """Arm the IdleHold timer: exponential backoff with seeded jitter."""
        if self._idle_hold_timer.running:
            return
        delay = min(
            self.config.idle_hold_max,
            self.config.idle_hold_time * (2 ** self.backoff_level),
        )
        # RFC 4271 §10 jitter: use 75-100% of the configured interval so
        # peers that failed together do not retry in lockstep.
        delay *= 0.75 + 0.25 * self._rng.random()
        self.backoff_level += 1
        self.reconnect_log.append((self.engine.now, delay))
        self._idle_hold_timer.start(delay)

    def _idle_hold_expired(self) -> None:
        if self.fsm.state in _IN_SESSION:
            return  # re-established in the meantime (e.g. peer-initiated)
        self.reconnect_attempts += 1
        endpoint = self._acquire_transport()
        if self.fsm.state in _IN_SESSION:
            return  # the new transport's backlog completed the handshake
        if endpoint is None or not endpoint.connected:
            self.connect_retry_count += 1
            if self.fsm.state == State.IDLE:
                self.fsm.fire(FsmEvent.AUTOMATIC_START)
            self.fsm.fire(FsmEvent.TRANSPORT_FAILED)
            self._schedule_reconnect()
            return
        if self.fsm.state == State.IDLE:
            self.fsm.fire(FsmEvent.AUTOMATIC_START)
        if self.config.passive:
            return  # transport is up and we are listening for the peer's OPEN
        self.fsm.fire(FsmEvent.TRANSPORT_CONNECTED)
        self._send_open()


def connect(
    engine: Engine,
    left: BGPSession,
    right: BGPSession,
) -> None:
    """Start both sessions (one should be passive for a clean handshake).

    With neither passive, both send OPEN simultaneously — also valid here
    since the message channel has no connection collision.
    """
    if left.config.passive and right.config.passive:
        raise BGPError("both sessions passive; nobody will send OPEN")
    if not left.config.passive:
        left.start()
    if not right.config.passive:
        right.start()
