"""A BGP session: FSM + timers + codec over a message channel.

:class:`BGPSession` drives one peering.  It encodes/decodes real message
bytes (via :mod:`repro.bgp.messages`), negotiates capabilities (4-octet AS
always; ADD-PATH when both sides configure it), runs keepalive and hold
timers on the discrete-event engine, and hands decoded UPDATEs to its
owner through the ``on_update`` callback.

Sessions come in pairs over a :class:`~repro.net.channel.ChannelPair`; the
convenience function :func:`connect` wires two sessions together and
starts them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..net.addr import IPAddress, Prefix
from ..net.channel import ChannelClosed, Endpoint
from ..sim.engine import Engine, Timer
from .attributes import PathAttributes
from .errors import BGPError, ErrorCode, OpenError, OpenSub
from .fsm import BGPStateMachine, FsmEvent, State
from .messages import (
    AddPathDirection,
    Capability,
    CapabilityCode,
    KeepaliveMessage,
    NotificationMessage,
    OpenMessage,
    RouteRefreshMessage,
    UpdateMessage,
    decode,
)

__all__ = ["SessionConfig", "BGPSession", "connect"]

DEFAULT_HOLD_TIME = 90
KEEPALIVE_FRACTION = 3  # keepalive = hold / 3, per convention


@dataclass
class SessionConfig:
    """Static configuration for one side of a session."""

    local_asn: int
    peer_asn: int
    local_id: IPAddress
    hold_time: int = DEFAULT_HOLD_TIME
    add_path: bool = False
    passive: bool = False
    description: str = ""

    def capabilities(self) -> List[Capability]:
        caps = [
            Capability.multiprotocol(),
            Capability.four_octet_as(self.local_asn),
            Capability(CapabilityCode.ROUTE_REFRESH),
        ]
        if self.add_path:
            caps.append(Capability.add_path(AddPathDirection.BOTH))
        return caps


class BGPSession:
    """One side of a BGP peering over a message channel.

    Callbacks (all optional):

    * ``on_update(session, UpdateMessage)`` — a decoded UPDATE arrived.
    * ``on_established(session)`` — the session reached ESTABLISHED.
    * ``on_down(session, reason)`` — the session left ESTABLISHED.
    * ``on_route_refresh(session)`` — peer asked for re-advertisement.
    """

    def __init__(self, engine: Engine, config: SessionConfig, endpoint: Endpoint) -> None:
        self.engine = engine
        self.config = config
        self.endpoint = endpoint
        self.fsm = BGPStateMachine()
        endpoint.on_receive = self._on_bytes
        endpoint.on_close = self._on_channel_close
        # Messages that arrived before this session attached (e.g. the
        # remote side opened first) sit in the endpoint queue; take them.
        self._backlog = endpoint.drain()

        self.on_update: Optional[Callable[["BGPSession", UpdateMessage], None]] = None
        self.on_established: Optional[Callable[["BGPSession"], None]] = None
        self.on_down: Optional[Callable[["BGPSession", str], None]] = None
        self.on_route_refresh: Optional[Callable[["BGPSession"], None]] = None

        self.negotiated_hold_time = config.hold_time
        self.add_path_active = False
        self.peer_open: Optional[OpenMessage] = None

        self._hold_timer: Timer = engine.timer(
            config.hold_time, self._hold_expired, label=f"hold:{config.description}"
        )
        self._keepalive_timer: Timer = engine.timer(
            max(1, config.hold_time // KEEPALIVE_FRACTION),
            self._send_keepalive,
            label=f"keepalive:{config.description}",
        )

        self.updates_sent = 0
        self.updates_received = 0
        self.last_error: Optional[str] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Begin session establishment (send OPEN unless passive)."""
        # Replay anything the peer sent before we attached to the channel:
        # its OPEN lands while we are IDLE and triggers the implicit-start
        # path, preserving message ordering.
        backlog, self._backlog = self._backlog, []
        for message in backlog:
            self._on_bytes(message)
        if self.fsm.state != State.IDLE:
            return  # already started (e.g. implicitly by the peer's OPEN)
        self.fsm.fire(FsmEvent.MANUAL_START)
        if not self.endpoint.connected:
            self.fsm.fire(FsmEvent.TRANSPORT_FAILED)
            return
        self.fsm.fire(FsmEvent.TRANSPORT_CONNECTED)
        self._send_open()

    def stop(self, reason: str = "administrative shutdown") -> None:
        """Administratively stop; sends CEASE if the channel is up."""
        if self.fsm.state == State.IDLE:
            return
        was_established = self.fsm.established
        try:
            self._send(NotificationMessage(ErrorCode.CEASE, 2).encode())
        except ChannelClosed:
            pass
        self.fsm.fire(FsmEvent.MANUAL_STOP)
        self._teardown(reason, was_established)

    @property
    def established(self) -> bool:
        return self.fsm.established

    # -- sending -----------------------------------------------------------

    def announce(
        self,
        prefixes: Sequence[Prefix],
        attributes: PathAttributes,
        path_ids: Optional[Sequence[int]] = None,
    ) -> None:
        """Send an UPDATE announcing ``prefixes`` with ``attributes``."""
        if path_ids is not None and not self.add_path_active:
            raise BGPError("path_ids supplied but ADD-PATH not negotiated")
        update = UpdateMessage.announce(prefixes, attributes, path_ids=path_ids)
        self.send_update(update)

    def withdraw(
        self, prefixes: Sequence[Prefix], path_ids: Optional[Sequence[int]] = None
    ) -> None:
        if path_ids is not None and not self.add_path_active:
            raise BGPError("path_ids supplied but ADD-PATH not negotiated")
        self.send_update(UpdateMessage.withdraw(prefixes, path_ids=path_ids))

    def send_update(self, update: UpdateMessage) -> None:
        if not self.fsm.established:
            raise BGPError(f"session {self.config.description!r} not established")
        self._send(update.encode())
        self.updates_sent += 1
        self._keepalive_timer.start()

    def request_refresh(self) -> None:
        if not self.fsm.established:
            raise BGPError("cannot refresh a down session")
        self._send(RouteRefreshMessage().encode())

    def _send(self, data: bytes) -> None:
        self.endpoint.send(data)

    def _send_open(self) -> None:
        open_msg = OpenMessage(
            asn=self.config.local_asn,
            hold_time=self.config.hold_time,
            bgp_id=self.config.local_id,
            capabilities=tuple(self.config.capabilities()),
        )
        self._send(open_msg.encode())

    def _send_keepalive(self) -> None:
        if self.fsm.state in (State.OPEN_CONFIRM, State.ESTABLISHED):
            try:
                self._send(KeepaliveMessage().encode())
            except ChannelClosed:
                self._transport_lost()
                return
            self._keepalive_timer.start()

    # -- receiving ---------------------------------------------------------

    def _on_bytes(self, data: bytes) -> None:
        try:
            message = decode(data, add_path=self.add_path_active)
        except BGPError as error:
            self._protocol_error(error)
            return
        try:
            self._dispatch(message)
        except BGPError as error:
            self._protocol_error(error)

    def _dispatch(self, message) -> None:
        if isinstance(message, OpenMessage):
            self._handle_open(message)
        elif isinstance(message, KeepaliveMessage):
            self._handle_keepalive()
        elif isinstance(message, UpdateMessage):
            self._handle_update(message)
        elif isinstance(message, NotificationMessage):
            self._handle_notification(message)
        elif isinstance(message, RouteRefreshMessage):
            if self.fsm.established and self.on_route_refresh is not None:
                self.on_route_refresh(self)

    def _handle_open(self, message: OpenMessage) -> None:
        if self.fsm.state == State.IDLE:
            # Not yet started (passive side, or the other side of a
            # simultaneous open): the peer's OPEN triggers ours.
            self.fsm.fire(FsmEvent.MANUAL_START)
            self.fsm.fire(FsmEvent.TRANSPORT_CONNECTED)
            self._send_open()
        if self.fsm.state != State.OPEN_SENT:
            raise BGPError("OPEN in unexpected state")
        if message.real_asn != self.config.peer_asn:
            self.fsm.fire(FsmEvent.OPEN_INVALID)
            notification = NotificationMessage(ErrorCode.OPEN_MESSAGE, OpenSub.BAD_PEER_AS)
            try:
                self._send(notification.encode())
            except ChannelClosed:
                pass
            self._teardown(f"bad peer AS {message.real_asn}", False)
            return
        self.peer_open = message
        self.negotiated_hold_time = min(self.config.hold_time, message.hold_time)
        self.add_path_active = self.config.add_path and message.supports_add_path
        self.fsm.fire(FsmEvent.OPEN_RECEIVED)
        self._send(KeepaliveMessage().encode())
        if self.negotiated_hold_time > 0:
            self._hold_timer.start(self.negotiated_hold_time)
            self._keepalive_timer.start(max(1, self.negotiated_hold_time // KEEPALIVE_FRACTION))

    def _handle_keepalive(self) -> None:
        if self.fsm.state == State.OPEN_CONFIRM:
            self.fsm.fire(FsmEvent.KEEPALIVE_RECEIVED)
            if self.on_established is not None:
                self.on_established(self)
        elif self.fsm.state == State.ESTABLISHED:
            self.fsm.fire(FsmEvent.KEEPALIVE_RECEIVED)
        else:
            raise BGPError("KEEPALIVE in unexpected state")
        if self.negotiated_hold_time > 0:
            self._hold_timer.start(self.negotiated_hold_time)

    def _handle_update(self, message: UpdateMessage) -> None:
        if not self.fsm.established:
            raise BGPError("UPDATE before ESTABLISHED")
        self.fsm.fire(FsmEvent.UPDATE_RECEIVED)
        self.updates_received += 1
        if self.negotiated_hold_time > 0:
            self._hold_timer.start(self.negotiated_hold_time)
        if self.on_update is not None:
            self.on_update(self, message)

    def _handle_notification(self, message: NotificationMessage) -> None:
        was_established = self.fsm.established
        self.fsm.fire(FsmEvent.NOTIFICATION_RECEIVED)
        self._teardown(str(message), was_established)

    # -- failure paths -------------------------------------------------------

    def _hold_expired(self) -> None:
        was_established = self.fsm.established
        try:
            self._send(
                NotificationMessage(ErrorCode.HOLD_TIMER_EXPIRED).encode()
            )
        except ChannelClosed:
            pass
        self.fsm.fire(FsmEvent.HOLD_TIMER_EXPIRED)
        self._teardown("hold timer expired", was_established)

    def _protocol_error(self, error: BGPError) -> None:
        was_established = self.fsm.established
        try:
            self._send(NotificationMessage(error.code, error.subcode).encode())
        except ChannelClosed:
            pass
        if self.fsm.state != State.IDLE:
            self.fsm.fire(FsmEvent.MANUAL_STOP)
        self._teardown(f"protocol error: {error}", was_established)

    def _on_channel_close(self) -> None:
        self._transport_lost()

    def _transport_lost(self) -> None:
        if self.fsm.state == State.IDLE:
            return
        was_established = self.fsm.established
        self.fsm.fire(FsmEvent.MANUAL_STOP)
        self._teardown("transport lost", was_established)

    def _teardown(self, reason: str, was_established: bool) -> None:
        self.last_error = reason
        self._hold_timer.stop()
        self._keepalive_timer.stop()
        if was_established and self.on_down is not None:
            self.on_down(self, reason)


def connect(
    engine: Engine,
    left: BGPSession,
    right: BGPSession,
) -> None:
    """Start both sessions (one should be passive for a clean handshake).

    With neither passive, both send OPEN simultaneously — also valid here
    since the message channel has no connection collision.
    """
    if left.config.passive and right.config.passive:
        raise BGPError("both sessions passive; nobody will send OPEN")
    if not left.config.passive:
        left.start()
    if not right.config.passive:
        right.start()
