"""MRT-style export of BGP updates and table dumps (RFC 6396 subset).

PEERING automatically collects control-plane measurements toward its
prefixes (§3 "Easing management").  The collectors in
:mod:`repro.core.measurements` persist what they see in MRT records so the
output can be processed like a RouteViews feed.

Implemented record types:

* ``BGP4MP_MESSAGE_AS4`` (type 16, subtype 4) wrapping a raw UPDATE.
* ``TABLE_DUMP_V2`` PEER_INDEX_TABLE (13/1) and RIB_IPV4_UNICAST (13/2).

The binary layout follows the RFC closely enough that records round-trip
through our own reader; interchange with external tooling is best-effort.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterator, List, Optional, Sequence, Tuple

from ..net.addr import IPAddress, Prefix
from .attributes import PathAttributes
from .messages import UpdateMessage, HEADER_LEN
from .rib import Route

__all__ = [
    "MRT_BGP4MP",
    "MRT_TABLE_DUMP_V2",
    "MrtRecord",
    "write_update",
    "write_table_dump",
    "read_records",
    "read_table_dump",
]

MRT_BGP4MP = 16
BGP4MP_MESSAGE_AS4 = 4
MRT_TABLE_DUMP_V2 = 13
TD2_PEER_INDEX = 1
TD2_RIB_IPV4_UNICAST = 2


@dataclass(frozen=True)
class MrtRecord:
    timestamp: int
    type: int
    subtype: int
    data: bytes

    def encode(self) -> bytes:
        return (
            struct.pack("!IHHI", self.timestamp, self.type, self.subtype, len(self.data))
            + self.data
        )


def write_update(
    out: BinaryIO,
    timestamp: float,
    local_asn: int,
    peer_asn: int,
    peer_address: IPAddress,
    local_address: IPAddress,
    update: UpdateMessage,
) -> None:
    """Append one BGP4MP_MESSAGE_AS4 record wrapping ``update``."""
    raw = update.encode()
    body = (
        struct.pack("!IIHH", peer_asn, local_asn, 0, 1)  # ifindex=0, AFI=1
        + peer_address.packed()
        + local_address.packed()
        + raw
    )
    record = MrtRecord(int(timestamp), MRT_BGP4MP, BGP4MP_MESSAGE_AS4, body)
    out.write(record.encode())


def write_table_dump(
    out: BinaryIO,
    timestamp: float,
    collector_id: IPAddress,
    routes: Sequence[Route],
) -> int:
    """Write a PEER_INDEX_TABLE followed by one RIB entry per prefix.

    Returns the number of RIB records written.  Routes are grouped by
    prefix; each group becomes one RIB_IPV4_UNICAST record whose entries
    reference peers by index.
    """
    peers: List[Tuple[int, str]] = []
    peer_index = {}
    for route in routes:
        key = (route.peer_asn or 0, route.peer_id)
        if key not in peer_index:
            peer_index[key] = len(peers)
            peers.append(key)

    body = collector_id.packed() + struct.pack("!H", 0)  # no view name
    body += struct.pack("!H", len(peers))
    for asn, peer_id in peers:
        try:
            address = IPAddress(peer_id)
        except Exception:
            address = IPAddress(0, 4)
        # peer type 2 = AS4 + IPv4 address
        body += bytes([2]) + IPAddress(0, 4).packed() + address.packed() + struct.pack("!I", asn)
    out.write(MrtRecord(int(timestamp), MRT_TABLE_DUMP_V2, TD2_PEER_INDEX, body).encode())

    by_prefix = {}
    for route in routes:
        by_prefix.setdefault(route.prefix, []).append(route)

    seq = 0
    for prefix in sorted(by_prefix):
        group = by_prefix[prefix]
        entry_blob = b""
        for route in group:
            attrs = _encode_rib_attributes(route.attributes)
            idx = peer_index[(route.peer_asn or 0, route.peer_id)]
            entry_blob += struct.pack("!HIH", idx, int(route.learned_at), len(attrs)) + attrs
        nbytes = (prefix.length + 7) // 8
        body = (
            struct.pack("!IB", seq, prefix.length)
            + prefix.address.packed()[:nbytes]
            + struct.pack("!H", len(group))
            + entry_blob
        )
        out.write(
            MrtRecord(int(timestamp), MRT_TABLE_DUMP_V2, TD2_RIB_IPV4_UNICAST, body).encode()
        )
        seq += 1
    return seq


def _encode_rib_attributes(attributes: PathAttributes) -> bytes:
    from .messages import _encode_attributes  # shared with the UPDATE codec

    return _encode_attributes(attributes)


def read_records(data: bytes) -> Iterator[MrtRecord]:
    """Iterate the MRT records in ``data``."""
    i = 0
    while i < len(data):
        if i + 12 > len(data):
            raise ValueError("truncated MRT header")
        timestamp, rtype, subtype, length = struct.unpack_from("!IHHI", data, i)
        i += 12
        if i + length > len(data):
            raise ValueError("truncated MRT record body")
        yield MrtRecord(timestamp, rtype, subtype, data[i : i + length])
        i += length


def read_table_dump(data: bytes) -> List[Route]:
    """Decode a TABLE_DUMP_V2 stream back into :class:`Route` entries.

    The inverse of :func:`write_table_dump`: a PEER_INDEX_TABLE record
    establishes the peer list, and each RIB_IPV4_UNICAST record yields one
    Route per entry.  Raises :class:`ValueError` on malformed input (the
    round-trip regression test feeds this from our own writer, but a
    reader must not crash on garbage either).
    """
    peers: List[Tuple[int, str]] = []
    routes: List[Route] = []
    for record in read_records(data):
        if record.type != MRT_TABLE_DUMP_V2:
            continue
        if record.subtype == TD2_PEER_INDEX:
            peers = _decode_peer_index(record.data)
        elif record.subtype == TD2_RIB_IPV4_UNICAST:
            if not peers:
                raise ValueError("RIB record before PEER_INDEX_TABLE")
            routes.extend(
                _decode_rib_record(record.timestamp, record.data, peers)
            )
    return routes


def _decode_peer_index(data: bytes) -> List[Tuple[int, str]]:
    offset = 4  # collector id
    (name_len,) = struct.unpack_from("!H", data, offset)
    offset += 2 + name_len
    (count,) = struct.unpack_from("!H", data, offset)
    offset += 2
    peers: List[Tuple[int, str]] = []
    for _ in range(count):
        peer_type = data[offset]
        offset += 1
        # We only ever write type 2 (AS4, IPv4 BGP id + address).
        if peer_type != 2:
            raise ValueError(f"unsupported peer type {peer_type}")
        offset += 4  # BGP id (unused by our writer)
        address = IPAddress.from_packed(data[offset : offset + 4])
        offset += 4
        (asn,) = struct.unpack_from("!I", data, offset)
        offset += 4
        peers.append((asn, str(address)))
    return peers


def _decode_rib_record(
    timestamp: int, data: bytes, peers: Sequence[Tuple[int, str]]
) -> List[Route]:
    _seq, plen = struct.unpack_from("!IB", data, 0)
    offset = 5
    nbytes = (plen + 7) // 8
    packed = data[offset : offset + nbytes] + b"\x00" * (4 - nbytes)
    prefix = Prefix(IPAddress.from_packed(packed), plen)
    offset += nbytes
    (count,) = struct.unpack_from("!H", data, offset)
    offset += 2
    from .messages import _decode_attributes

    routes: List[Route] = []
    for _ in range(count):
        idx, learned_at, attr_len = struct.unpack_from("!HIH", data, offset)
        offset += 8
        if idx >= len(peers):
            raise ValueError(f"peer index {idx} out of range")
        attributes = _decode_attributes(data[offset : offset + attr_len])
        offset += attr_len
        asn, peer_id = peers[idx]
        routes.append(
            Route(
                prefix=prefix,
                attributes=attributes,
                peer_asn=asn or None,
                peer_id=peer_id,
                learned_at=float(learned_at),
            )
        )
    return routes


def decode_update_record(record: MrtRecord) -> Tuple[int, int, UpdateMessage]:
    """Decode a BGP4MP_MESSAGE_AS4 record to (peer_asn, local_asn, update)."""
    if record.type != MRT_BGP4MP or record.subtype != BGP4MP_MESSAGE_AS4:
        raise ValueError("not a BGP4MP_MESSAGE_AS4 record")
    peer_asn, local_asn, _ifindex, afi = struct.unpack_from("!IIHH", record.data, 0)
    addr_len = 4 if afi == 1 else 16
    offset = 12 + 2 * addr_len
    from .messages import decode

    update = decode(record.data[offset:])
    if not isinstance(update, UpdateMessage):
        raise ValueError("MRT record does not wrap an UPDATE")
    return peer_asn, local_asn, update
