"""Routing policy engine: prefix lists, AS-path filters, route maps.

This is the machinery PEERING's safety layer is built from (§3 "Enforcing
safety"): outbound prefix/origin filters at the mux are expressed as a
:class:`RouteMap` whose terms match on prefix lists and AS-path properties
and either permit (optionally transforming attributes) or deny.

The pieces compose like their router-CLI namesakes:

* :class:`PrefixList` — ordered permit/deny entries with ``ge``/``le``
  length ranges.
* :class:`AsPathFilter` — predicates over the AS path (regex-free: origin
  ASN sets, containment, length bounds — the operations filters actually
  use).
* :class:`RouteMap` — ordered terms; each term matches a conjunction of
  conditions and applies ``set`` actions on permit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..net.addr import Prefix
from ..secroute.rpki import RoaRegistry, ValidationState
from .attributes import Community, PathAttributes
from .rib import Route

__all__ = [
    "PrefixListEntry",
    "PrefixList",
    "AsPathFilter",
    "MatchConditions",
    "SetActions",
    "RouteMapTerm",
    "RouteMap",
    "PolicyResult",
]


@dataclass(frozen=True)
class PrefixListEntry:
    """One ``permit/deny prefix [ge X] [le Y]`` line."""

    prefix: Prefix
    permit: bool = True
    ge: Optional[int] = None
    le: Optional[int] = None

    def matches(self, candidate: Prefix) -> bool:
        if not self.prefix.contains(candidate):
            return False
        low = self.ge if self.ge is not None else self.prefix.length
        high = self.le if self.le is not None else (
            self.prefix.length if self.ge is None else candidate.bits
        )
        return low <= candidate.length <= high


class PrefixList:
    """An ordered prefix list; first matching entry wins.

    ``default_permit`` controls the implicit final entry (routers default
    to deny).
    """

    def __init__(
        self,
        entries: Iterable[PrefixListEntry] = (),
        name: str = "",
        default_permit: bool = False,
    ) -> None:
        self.name = name
        self.entries: List[PrefixListEntry] = list(entries)
        self.default_permit = default_permit

    @classmethod
    def permitting(cls, prefixes: Iterable[Prefix], name: str = "", le: Optional[int] = None) -> "PrefixList":
        """Permit exactly these prefixes (optionally their more-specifics up to /le)."""
        return cls(
            [PrefixListEntry(p, permit=True, ge=p.length if le else None, le=le) for p in prefixes],
            name=name,
        )

    def add(self, entry: PrefixListEntry) -> None:
        self.entries.append(entry)

    def permits(self, prefix: Prefix) -> bool:
        for entry in self.entries:
            if entry.matches(prefix):
                return entry.permit
        return self.default_permit

    def __len__(self) -> int:
        return len(self.entries)


@dataclass(frozen=True)
class AsPathFilter:
    """Predicates over the AS path; all configured conditions must hold."""

    origin_in: Optional[FrozenSet[int]] = None
    contains_any: Optional[FrozenSet[int]] = None
    contains_none: Optional[FrozenSet[int]] = None
    max_length: Optional[int] = None
    min_length: Optional[int] = None
    first_asn_in: Optional[FrozenSet[int]] = None

    def matches(self, attributes: PathAttributes) -> bool:
        path = attributes.as_path
        if self.origin_in is not None and path.origin_asn not in self.origin_in:
            return False
        if self.contains_any is not None and not any(
            path.contains(asn) for asn in self.contains_any
        ):
            return False
        if self.contains_none is not None and any(
            path.contains(asn) for asn in self.contains_none
        ):
            return False
        if self.max_length is not None and path.length() > self.max_length:
            return False
        if self.min_length is not None and path.length() < self.min_length:
            return False
        if self.first_asn_in is not None and path.first_asn not in self.first_asn_in:
            return False
        return True


@dataclass(frozen=True)
class MatchConditions:
    """Conjunction of match clauses for one route-map term."""

    prefix_list: Optional[PrefixList] = None
    as_path: Optional[AsPathFilter] = None
    communities_any: Optional[FrozenSet[Community]] = None
    communities_all: Optional[FrozenSet[Community]] = None
    # RFC 6811 validation-state match (a route-map ``match rpki ...``).
    # A route never validated counts as NotFound, per RFC 8481.
    validation_in: Optional[FrozenSet[ValidationState]] = None
    custom: Optional[Callable[[Route], bool]] = None

    def matches(self, route: Route) -> bool:
        if self.prefix_list is not None and not self.prefix_list.permits(route.prefix):
            return False
        if self.as_path is not None and not self.as_path.matches(route.attributes):
            return False
        if self.validation_in is not None:
            state = (
                ValidationState.NOT_FOUND
                if route.validation is None
                else route.validation
            )
            if state not in self.validation_in:
                return False
        if self.communities_any is not None and not (
            route.attributes.communities & self.communities_any
        ):
            return False
        if self.communities_all is not None and not (
            self.communities_all <= route.attributes.communities
        ):
            return False
        if self.custom is not None and not self.custom(route):
            return False
        return True


@dataclass(frozen=True)
class SetActions:
    """Attribute rewrites applied when a permitting term matches."""

    local_pref: Optional[int] = None
    med: Optional[int] = None
    prepend: Tuple[int, ...] = ()
    add_communities: FrozenSet[Community] = frozenset()
    remove_communities: FrozenSet[Community] = frozenset()
    clear_communities: bool = False
    weight: Optional[int] = None
    # Stamp a fixed validation state, or run RFC 6811 validation against
    # a ROA registry (``validate_against`` wins when both are set and the
    # route's origin ASN is known).
    validation: Optional[ValidationState] = None
    validate_against: Optional[RoaRegistry] = None
    custom: Optional[Callable[[Route], Route]] = None

    def apply(self, route: Route) -> Route:
        attributes = route.attributes
        if self.local_pref is not None:
            attributes = attributes.with_local_pref(self.local_pref)
        if self.med is not None:
            attributes = attributes.with_med(self.med)
        for asn in reversed(self.prepend):
            attributes = attributes.prepended(asn)
        communities = attributes.communities
        if self.clear_communities:
            communities = frozenset()
        communities = (communities - self.remove_communities) | self.add_communities
        if communities != attributes.communities:
            attributes = attributes.with_communities(communities)
        route = route.with_attributes(attributes)
        if self.weight is not None:
            route = replace(route, weight=self.weight)
        if self.validation is not None:
            route = route.with_validation(self.validation)
        if self.validate_against is not None:
            origin = route.attributes.as_path.origin_asn
            if origin is not None:
                route = route.with_validation(
                    self.validate_against.validate(route.prefix, origin)
                )
        if self.custom is not None:
            route = self.custom(route)
        return route


@dataclass(frozen=True)
class RouteMapTerm:
    name: str
    permit: bool = True
    match: MatchConditions = field(default_factory=MatchConditions)
    actions: SetActions = field(default_factory=SetActions)


@dataclass(frozen=True)
class PolicyResult:
    """Outcome of applying a route map: the (possibly rewritten) route or a
    denial with the name of the term (or implicit default) that denied it."""

    route: Optional[Route]
    term: str

    @property
    def permitted(self) -> bool:
        return self.route is not None


class RouteMap:
    """Ordered route-map terms; first match wins; implicit deny at the end.

    An empty route map with ``default_permit=True`` is the identity policy.
    """

    PERMIT_ALL: "RouteMap"

    def __init__(
        self,
        terms: Iterable[RouteMapTerm] = (),
        name: str = "",
        default_permit: bool = False,
    ) -> None:
        self.name = name
        self.terms: List[RouteMapTerm] = list(terms)
        self.default_permit = default_permit

    def add(self, term: RouteMapTerm) -> None:
        self.terms.append(term)

    def apply(self, route: Route) -> PolicyResult:
        for term in self.terms:
            if term.match.matches(route):
                if not term.permit:
                    return PolicyResult(None, term.name)
                return PolicyResult(term.actions.apply(route), term.name)
        if self.default_permit:
            return PolicyResult(route, "<default-permit>")
        return PolicyResult(None, "<default-deny>")

    def __len__(self) -> int:
        return len(self.terms)


RouteMap.PERMIT_ALL = RouteMap(name="permit-all", default_permit=True)
