"""BGP error codes (RFC 4271 §4.5) and the exceptions the stack raises.

A :class:`BGPError` carries the (code, subcode) pair that would go into a
NOTIFICATION message, so protocol code can convert caught errors directly
into the message that closes the session.
"""

from __future__ import annotations

from enum import IntEnum

__all__ = [
    "ErrorCode",
    "HeaderSub",
    "OpenSub",
    "UpdateSub",
    "FsmSub",
    "CeaseSub",
    "BGPError",
    "MessageDecodeError",
    "UpdateError",
    "OpenError",
]


class ErrorCode(IntEnum):
    MESSAGE_HEADER = 1
    OPEN_MESSAGE = 2
    UPDATE_MESSAGE = 3
    HOLD_TIMER_EXPIRED = 4
    FSM_ERROR = 5
    CEASE = 6


class HeaderSub(IntEnum):
    CONNECTION_NOT_SYNCHRONIZED = 1
    BAD_MESSAGE_LENGTH = 2
    BAD_MESSAGE_TYPE = 3


class OpenSub(IntEnum):
    UNSUPPORTED_VERSION = 1
    BAD_PEER_AS = 2
    BAD_BGP_IDENTIFIER = 3
    UNSUPPORTED_OPTIONAL_PARAMETER = 4
    UNACCEPTABLE_HOLD_TIME = 6
    UNSUPPORTED_CAPABILITY = 7


class UpdateSub(IntEnum):
    MALFORMED_ATTRIBUTE_LIST = 1
    UNRECOGNIZED_WELLKNOWN_ATTRIBUTE = 2
    MISSING_WELLKNOWN_ATTRIBUTE = 3
    ATTRIBUTE_FLAGS_ERROR = 4
    ATTRIBUTE_LENGTH_ERROR = 5
    INVALID_ORIGIN = 6
    INVALID_NEXT_HOP = 8
    OPTIONAL_ATTRIBUTE_ERROR = 9
    INVALID_NETWORK_FIELD = 10
    MALFORMED_AS_PATH = 11


class FsmSub(IntEnum):
    UNSPECIFIED = 0
    UNEXPECTED_IN_OPENSENT = 1
    UNEXPECTED_IN_OPENCONFIRM = 2
    UNEXPECTED_IN_ESTABLISHED = 3


class CeaseSub(IntEnum):
    """RFC 4486 cease subcodes."""

    MAX_PREFIXES_REACHED = 1
    ADMINISTRATIVE_SHUTDOWN = 2
    PEER_DECONFIGURED = 3
    ADMINISTRATIVE_RESET = 4
    CONNECTION_REJECTED = 5
    OTHER_CONFIGURATION_CHANGE = 6
    CONNECTION_COLLISION_RESOLUTION = 7
    OUT_OF_RESOURCES = 8


class BGPError(Exception):
    """Base BGP protocol error, carrying NOTIFICATION (code, subcode, data)."""

    code = ErrorCode.FSM_ERROR
    subcode = 0

    def __init__(self, message: str = "", subcode: int = None, data: bytes = b""):
        super().__init__(message)
        if subcode is not None:
            self.subcode = subcode
        self.data = data


class MessageDecodeError(BGPError):
    code = ErrorCode.MESSAGE_HEADER
    subcode = HeaderSub.BAD_MESSAGE_LENGTH


class OpenError(BGPError):
    code = ErrorCode.OPEN_MESSAGE
    subcode = OpenSub.UNSUPPORTED_VERSION


class UpdateError(BGPError):
    code = ErrorCode.UPDATE_MESSAGE
    subcode = UpdateSub.MALFORMED_ATTRIBUTE_LIST
