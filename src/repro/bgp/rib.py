"""Routing Information Bases: Adj-RIB-In, Loc-RIB, Adj-RIB-Out.

A :class:`Route` binds a prefix to its path attributes and bookkeeping
(which peer sent it, its ADD-PATH identifier, whether it is locally
originated).  The three RIB stages follow RFC 4271 §3.2:

* :class:`AdjRIBIn` — routes learned from one peer, pre-policy.
* :class:`LocRIB` — the routes the decision process selected, one best
  route per prefix plus the losing candidates (kept for ADD-PATH export
  and for fast reconvergence on withdrawal).
* :class:`AdjRIBOut` — what has been advertised to one peer, post-policy,
  used to suppress duplicate updates and to generate withdrawals.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from ..net.addr import Prefix
from .attributes import PathAttributes

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..secroute.rpki import ValidationState

__all__ = ["Route", "AdjRIBIn", "LocRIB", "AdjRIBOut"]


@dataclass(frozen=True)
class Route:
    """One candidate path for one prefix."""

    prefix: Prefix
    attributes: PathAttributes
    peer_asn: Optional[int] = None
    peer_id: str = ""
    path_id: Optional[int] = None
    ebgp: bool = True
    local: bool = False
    weight: int = 0
    igp_metric: int = 0
    learned_at: float = 0.0
    # RFC 4724: the route survived a graceful session restart and is kept
    # in the decision process until the peer re-advertises (or a deadline
    # flushes it).  Comparison field so marking shows up as a change.
    stale: bool = False
    # RFC 6811 origin-validation outcome, stamped by import policy or the
    # looking glass; None means validation never ran (treated as NotFound
    # by the decision process, per RFC 8481).
    validation: Optional["ValidationState"] = None

    def with_attributes(self, attributes: PathAttributes) -> "Route":
        return replace(self, attributes=attributes)

    def with_validation(self, validation: Optional["ValidationState"]) -> "Route":
        return replace(self, validation=validation)

    def key(self) -> Tuple[str, Optional[int]]:
        """Identity of this route within a prefix: (peer, path id)."""
        return (self.peer_id, self.path_id)

    def __str__(self) -> str:
        origin = "local" if self.local else f"peer {self.peer_id or self.peer_asn}"
        return f"{self.prefix} via {origin}: {self.attributes}"


class AdjRIBIn:
    """Routes received from a single peer, keyed by (prefix, path id).

    Without ADD-PATH there is implicitly one path per prefix (path id
    ``None``), so a new announcement replaces the old one.
    """

    def __init__(self, peer_id: str = "") -> None:
        self.peer_id = peer_id
        self._routes: Dict[Prefix, Dict[Optional[int], Route]] = {}

    def add(self, route: Route) -> Optional[Route]:
        """Insert/replace; returns the replaced route if any."""
        slot = self._routes.setdefault(route.prefix, {})
        previous = slot.get(route.path_id)
        slot[route.path_id] = route
        return previous

    def remove(self, prefix: Prefix, path_id: Optional[int] = None) -> Optional[Route]:
        slot = self._routes.get(prefix)
        if not slot:
            return None
        route = slot.pop(path_id, None)
        if not slot:
            del self._routes[prefix]
        return route

    def remove_all(self, prefix: Prefix) -> List[Route]:
        slot = self._routes.pop(prefix, None)
        return list(slot.values()) if slot else []

    def get(self, prefix: Prefix, path_id: Optional[int] = None) -> Optional[Route]:
        return self._routes.get(prefix, {}).get(path_id)

    def routes_for(self, prefix: Prefix) -> List[Route]:
        return list(self._routes.get(prefix, {}).values())

    def prefixes(self) -> Iterator[Prefix]:
        return iter(self._routes)

    def routes(self) -> Iterator[Route]:
        for slot in self._routes.values():
            yield from slot.values()

    def clear(self) -> List[Route]:
        """Drop everything (session reset); returns what was dropped."""
        dropped = list(self.routes())
        self._routes.clear()
        return dropped

    # -- graceful restart (RFC 4724) -------------------------------------

    def mark_all_stale(self) -> int:
        """Stale-mark every route (peer restarting); returns the count.

        Stale routes stay in the decision process; a re-announcement from
        the recovered peer replaces them (the fresh :class:`Route` carries
        ``stale=False``), and :meth:`flush_stale` sweeps the leftovers.
        """
        count = 0
        for slot in self._routes.values():
            for path_id, route in slot.items():
                if not route.stale:
                    slot[path_id] = replace(route, stale=True)
                    count += 1
        return count

    def flush_stale(self) -> List[Route]:
        """Drop every stale route (End-of-RIB or deadline); returns them."""
        dropped: List[Route] = []
        for prefix in list(self._routes):
            slot = self._routes[prefix]
            for path_id in list(slot):
                if slot[path_id].stale:
                    dropped.append(slot.pop(path_id))
            if not slot:
                del self._routes[prefix]
        return dropped

    def stale_count(self) -> int:
        return sum(1 for route in self.routes() if route.stale)

    def __len__(self) -> int:
        return sum(len(slot) for slot in self._routes.values())

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._routes


class LocRIB:
    """Selected routes: one best per prefix plus ranked alternates."""

    def __init__(self) -> None:
        self._best: Dict[Prefix, Route] = {}
        self._candidates: Dict[Prefix, List[Route]] = {}

    def set(self, prefix: Prefix, best: Optional[Route], candidates: List[Route]) -> bool:
        """Install the decision outcome; returns True if the best changed."""
        previous = self._best.get(prefix)
        if best is None:
            self._best.pop(prefix, None)
            self._candidates.pop(prefix, None)
            return previous is not None
        self._best[prefix] = best
        self._candidates[prefix] = candidates
        return previous != best

    def best(self, prefix: Prefix) -> Optional[Route]:
        return self._best.get(prefix)

    def candidates(self, prefix: Prefix) -> List[Route]:
        return self._candidates.get(prefix, [])

    def prefixes(self) -> Iterator[Prefix]:
        return iter(self._best)

    def routes(self) -> Iterator[Route]:
        return iter(self._best.values())

    def __len__(self) -> int:
        return len(self._best)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._best


class AdjRIBOut:
    """What has been advertised to one peer (post export policy)."""

    def __init__(self, peer_id: str = "") -> None:
        self.peer_id = peer_id
        self._routes: Dict[Prefix, Dict[Optional[int], Route]] = {}

    def advertise(self, route: Route) -> bool:
        """Record an advertisement; returns False if identical already sent."""
        slot = self._routes.setdefault(route.prefix, {})
        if slot.get(route.path_id) == route:
            return False
        slot[route.path_id] = route
        return True

    def withdraw(self, prefix: Prefix, path_id: Optional[int] = None) -> Optional[Route]:
        slot = self._routes.get(prefix)
        if not slot:
            return None
        route = slot.pop(path_id, None)
        if not slot:
            self._routes.pop(prefix, None)
        return route

    def withdraw_all(self, prefix: Prefix) -> List[Route]:
        slot = self._routes.pop(prefix, None)
        return list(slot.values()) if slot else []

    def get(self, prefix: Prefix, path_id: Optional[int] = None) -> Optional[Route]:
        return self._routes.get(prefix, {}).get(path_id)

    def path_ids(self, prefix: Prefix) -> List[Optional[int]]:
        return list(self._routes.get(prefix, {}).keys())

    def clear(self) -> List[Route]:
        """Forget all advertisements (session reset); returns them.

        After a session bounce the peer has lost everything we sent, so the
        next full export must re-advertise from scratch rather than being
        suppressed by the duplicate check.
        """
        dropped = list(self.routes())
        self._routes.clear()
        return dropped

    def prefixes(self) -> Iterator[Prefix]:
        return iter(self._routes)

    def routes(self) -> Iterator[Route]:
        for slot in self._routes.values():
            yield from slot.values()

    def __len__(self) -> int:
        return sum(len(slot) for slot in self._routes.values())

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._routes
