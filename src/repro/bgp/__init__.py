"""From-scratch BGP-4 implementation: codec, FSM, sessions, RIBs, policy,
flap damping, and a complete router."""

from .attributes import (
    ASPath,
    ASPathSegment,
    Community,
    NO_ADVERTISE,
    NO_EXPORT,
    Origin,
    PathAttributes,
    SegmentType,
    is_private_asn,
)
from .dampening import DampeningConfig, RouteFlapDamper
from .decision import best_path, select_best
from .errors import BGPError, MessageDecodeError, OpenError, UpdateError
from .fsm import BGPStateMachine, FsmEvent, State
from .messages import (
    Capability,
    KeepaliveMessage,
    NotificationMessage,
    OpenMessage,
    RouteRefreshMessage,
    UpdateMessage,
    decode,
)
from .policy import (
    AsPathFilter,
    MatchConditions,
    PolicyResult,
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapTerm,
    SetActions,
)
from .rib import AdjRIBIn, AdjRIBOut, LocRIB, Route
from .router import BGPRouter, PeerConfig, connect_routers
from .session import BGPSession, SessionConfig, connect

__all__ = [
    "ASPath",
    "ASPathSegment",
    "Community",
    "NO_ADVERTISE",
    "NO_EXPORT",
    "Origin",
    "PathAttributes",
    "SegmentType",
    "is_private_asn",
    "DampeningConfig",
    "RouteFlapDamper",
    "best_path",
    "select_best",
    "BGPError",
    "MessageDecodeError",
    "OpenError",
    "UpdateError",
    "BGPStateMachine",
    "FsmEvent",
    "State",
    "Capability",
    "KeepaliveMessage",
    "NotificationMessage",
    "OpenMessage",
    "RouteRefreshMessage",
    "UpdateMessage",
    "decode",
    "AsPathFilter",
    "MatchConditions",
    "PolicyResult",
    "PrefixList",
    "PrefixListEntry",
    "RouteMap",
    "RouteMapTerm",
    "SetActions",
    "AdjRIBIn",
    "AdjRIBOut",
    "LocRIB",
    "Route",
    "BGPRouter",
    "PeerConfig",
    "connect_routers",
    "BGPSession",
    "SessionConfig",
    "connect",
]
