"""A complete BGP router: sessions + RIB stages + decision + export.

This is the library's Quagga: PEERING servers are built from it, the
MinineXt emulation runs one per PoP, and Figure 2 measures its table
memory.  It implements:

* per-peer Adj-RIB-In (post import policy), Loc-RIB, per-peer Adj-RIB-Out;
* the decision process from :mod:`repro.bgp.decision`;
* eBGP export rules (prepend own ASN, next-hop-self, strip LOCAL_PREF and
  non-local MED), iBGP rules (no iBGP-to-iBGP re-advertisement unless
  acting as an RFC 4456 route reflector), NO_EXPORT/NO_ADVERTISE handling;
* receive-side loop rejection (own ASN in AS_PATH — the mechanism that
  makes AS-path poisoning work);
* ADD-PATH transmit: up to ``add_path_limit`` ranked paths per prefix for
  peers that negotiated it (the BIRD-mode mux in §3);
* optional MRAI batching per peer and max-prefix limits.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..net.addr import IPAddress, Prefix
from ..net.channel import ChannelPair, Endpoint
from ..sim.engine import Engine, Timer
from .attributes import (
    NO_ADVERTISE,
    NO_EXPORT,
    Community,
    Origin,
    PathAttributes,
    ASPath,
)
from .decision import select_best
from .errors import BGPError
from .policy import RouteMap
from .rib import AdjRIBIn, AdjRIBOut, LocRIB, Route
from .session import BGPSession, SessionConfig
from .messages import UpdateMessage

__all__ = ["PeerConfig", "BGPRouter", "connect_routers"]


@dataclass
class PeerConfig:
    """Configuration of one neighbor."""

    peer_id: str
    remote_asn: int
    local_address: IPAddress
    import_policy: RouteMap = field(default_factory=lambda: RouteMap.PERMIT_ALL)
    export_policy: RouteMap = field(default_factory=lambda: RouteMap.PERMIT_ALL)
    add_path: bool = False
    add_path_limit: int = 4
    passive: bool = False
    hold_time: int = 90
    mrai: float = 0.0
    max_prefixes: Optional[int] = None
    route_reflector_client: bool = False
    next_hop_self_ibgp: bool = False
    # Resilience knobs, passed through to the session (see SessionConfig).
    auto_reconnect: bool = False
    idle_hold_time: float = 5.0
    idle_hold_max: float = 300.0
    graceful_restart: bool = False
    restart_time: int = 120
    description: str = ""


class _Peer:
    """Runtime state for one neighbor."""

    def __init__(self, config: PeerConfig, session: BGPSession) -> None:
        self.config = config
        self.session = session
        self.adj_in = AdjRIBIn(config.peer_id)
        self.adj_out = AdjRIBOut(config.peer_id)
        self.pending_announce: Dict[Tuple[Prefix, Optional[int]], Route] = {}
        self.pending_withdraw: Set[Tuple[Prefix, Optional[int]]] = set()
        self.mrai_timer: Optional[Timer] = None
        self.prefix_limit_hit = False
        # RFC 4724: armed when the peer goes down gracefully; flushes the
        # stale-retained routes if the peer does not come back in time.
        self.restart_deadline: Optional[Timer] = None
        self.graceful_downs = 0
        self.stale_flushes = 0
        self._path_ids = itertools.count(1)
        self._assigned_ids: Dict[Tuple[str, Optional[int]], int] = {}

    def path_id_for(self, route: Route) -> int:
        """Stable ADD-PATH id for a (source peer, source path id) route."""
        key = route.key()
        if key not in self._assigned_ids:
            self._assigned_ids[key] = next(self._path_ids)
        return self._assigned_ids[key]


class BGPRouter:
    """A BGP speaker with an arbitrary number of neighbors.

    Hooks:

    * ``on_best_change(prefix, old_route, new_route)`` — Loc-RIB change.
    * ``on_update_received(peer_id, UpdateMessage)`` — raw feed (used by the
      measurement collectors).
    """

    def __init__(
        self,
        engine: Engine,
        asn: int,
        router_id: IPAddress,
        cluster_id: Optional[int] = None,
        always_compare_med: bool = False,
    ) -> None:
        self.engine = engine
        self.asn = asn
        self.router_id = router_id
        self.cluster_id = cluster_id if cluster_id is not None else router_id.value
        self.always_compare_med = always_compare_med
        self.loc_rib = LocRIB()
        self._peers: Dict[str, _Peer] = {}
        self._local_routes: Dict[Prefix, Route] = {}
        self.on_best_change: Optional[
            Callable[[Prefix, Optional[Route], Optional[Route]], None]
        ] = None
        self.on_update_received: Optional[Callable[[str, UpdateMessage], None]] = None
        # Hook for IGP integration: maps a route's next hop to its IGP
        # metric (step 8 of the decision process).  Installed by the
        # emulation layer; None means all metrics are 0.
        self.resolve_igp_metric: Optional[Callable[[IPAddress], int]] = None
        self.rejected_loops = 0
        self.rejected_policy = 0

    # -- peer management -----------------------------------------------------

    def add_peer(self, config: PeerConfig, endpoint: Optional[Endpoint]) -> BGPSession:
        """Register a neighbor reachable over ``endpoint``; returns its session.

        ``endpoint`` may be ``None`` when the transport will be supplied
        later through the session's ``transport_factory`` (mux failover,
        fault-injection links).
        """
        if config.peer_id in self._peers:
            raise BGPError(f"duplicate peer id {config.peer_id!r}")
        session = BGPSession(
            self.engine,
            SessionConfig(
                local_asn=self.asn,
                peer_asn=config.remote_asn,
                local_id=self.router_id,
                hold_time=config.hold_time,
                add_path=config.add_path,
                passive=config.passive,
                auto_reconnect=config.auto_reconnect,
                idle_hold_time=config.idle_hold_time,
                idle_hold_max=config.idle_hold_max,
                graceful_restart=config.graceful_restart,
                restart_time=config.restart_time,
                description=config.description or config.peer_id,
            ),
            endpoint,
        )
        peer = _Peer(config, session)
        session.on_update = lambda _s, update: self._handle_update(peer, update)
        session.on_established = lambda _s: self._handle_established(peer)
        session.on_down = lambda _s, reason: self._handle_down(peer, reason)
        session.on_route_refresh = lambda _s: self._full_export(peer)
        self._peers[config.peer_id] = peer
        return session

    def peer(self, peer_id: str) -> _Peer:
        return self._peers[peer_id]

    def peers(self) -> List[str]:
        return list(self._peers)

    def established_peers(self) -> List[str]:
        return [pid for pid, p in self._peers.items() if p.session.established]

    def start(self) -> None:
        """Start every non-passive session."""
        for peer in self._peers.values():
            if not peer.config.passive:
                peer.session.start()

    def remove_peer(self, peer_id: str) -> None:
        peer = self._peers.pop(peer_id, None)
        if peer is None:
            return
        peer.session.stop("peer deconfigured")
        self._flush_peer_routes(peer)

    # -- local origination -----------------------------------------------------

    def originate(
        self,
        prefix: Prefix,
        communities: Iterable[Community] = (),
        med: Optional[int] = None,
        origin: Origin = Origin.IGP,
    ) -> None:
        """Originate ``prefix`` locally (a ``network`` statement)."""
        attributes = PathAttributes(
            origin=origin,
            as_path=ASPath(),
            next_hop=None,
            med=med,
            communities=frozenset(communities),
        )
        route = Route(
            prefix=prefix,
            attributes=attributes,
            peer_id="",
            ebgp=False,
            local=True,
            weight=32768,
            learned_at=self.engine.now,
        )
        self._local_routes[prefix] = route
        self._reselect(prefix)

    def withdraw_local(self, prefix: Prefix) -> None:
        if self._local_routes.pop(prefix, None) is not None:
            self._reselect(prefix)

    def local_prefixes(self) -> List[Prefix]:
        return list(self._local_routes)

    # -- inbound -----------------------------------------------------------------

    def _handle_update(self, peer: _Peer, update: UpdateMessage) -> None:
        if self.on_update_received is not None:
            self.on_update_received(peer.config.peer_id, update)
        if update.is_end_of_rib:
            # RFC 4724: the recovered peer finished re-advertising; any
            # route it did not refresh is gone for real.
            self._flush_stale_routes(peer)
            return
        touched: Set[Prefix] = set()
        for path_id, prefix in update.withdrawn:
            if peer.adj_in.remove(prefix, path_id) is not None:
                touched.add(prefix)
        if update.attributes is not None:
            for path_id, prefix in update.nlri:
                if self._accept(peer, prefix, path_id, update.attributes):
                    touched.add(prefix)
        for prefix in touched:
            self._reselect(prefix)

    def _accept(
        self,
        peer: _Peer,
        prefix: Prefix,
        path_id: Optional[int],
        attributes: PathAttributes,
    ) -> bool:
        """Validate + apply import policy + install into Adj-RIB-In."""
        if attributes.as_path.contains(self.asn):
            self.rejected_loops += 1
            return peer.adj_in.remove(prefix, path_id) is not None
        if attributes.originator_id == self.router_id:
            return peer.adj_in.remove(prefix, path_id) is not None
        if self.cluster_id in attributes.cluster_list:
            return peer.adj_in.remove(prefix, path_id) is not None
        ebgp = peer.config.remote_asn != self.asn
        if ebgp:
            # LOCAL_PREF is not accepted across AS boundaries.
            attributes = attributes.with_local_pref(None)
        igp_metric = 0
        if self.resolve_igp_metric is not None and attributes.next_hop is not None:
            igp_metric = self.resolve_igp_metric(attributes.next_hop)
        route = Route(
            prefix=prefix,
            attributes=attributes,
            peer_asn=peer.config.remote_asn,
            peer_id=peer.config.peer_id,
            path_id=path_id,
            ebgp=ebgp,
            igp_metric=igp_metric,
            learned_at=self.engine.now,
        )
        result = peer.config.import_policy.apply(route)
        if not result.permitted:
            self.rejected_policy += 1
            return peer.adj_in.remove(prefix, path_id) is not None
        if (
            peer.config.max_prefixes is not None
            and prefix not in peer.adj_in
            and len(peer.adj_in) >= peer.config.max_prefixes
        ):
            peer.prefix_limit_hit = True
            return False
        peer.adj_in.add(result.route)
        return True

    def _handle_established(self, peer: _Peer) -> None:
        self._full_export(peer)
        if peer.session.gr_active:
            # End-of-RIB: tells a gracefully-restarted peer it may flush
            # whatever stale routes we did not just re-advertise.
            peer.session.send_end_of_rib()

    def _handle_down(self, peer: _Peer, reason: str) -> None:
        if peer.session.last_down_graceful:
            self._retain_peer_routes(peer)
        else:
            self._flush_peer_routes(peer)

    def _flush_peer_routes(self, peer: _Peer) -> None:
        dropped = peer.adj_in.clear()
        # The peer lost our advertisements too: forget Adj-RIB-Out so the
        # next full export is not suppressed as "already sent".
        peer.adj_out.clear()
        peer.pending_announce.clear()
        peer.pending_withdraw.clear()
        if peer.restart_deadline is not None:
            peer.restart_deadline.stop()
        for route in dropped:
            self._reselect(route.prefix)

    def _retain_peer_routes(self, peer: _Peer) -> None:
        """RFC 4724 graceful restart: keep the peer's routes, stale-marked,
        until it re-advertises, sends End-of-RIB, or the deadline passes."""
        peer.graceful_downs += 1
        peer.adj_in.mark_all_stale()
        peer.adj_out.clear()
        peer.pending_announce.clear()
        peer.pending_withdraw.clear()
        deadline = peer.session.peer_restart_time
        if not deadline:
            deadline = peer.session.config.restart_time
        if peer.restart_deadline is None:
            peer.restart_deadline = self.engine.timer(
                deadline,
                lambda: self._flush_stale_routes(peer),
                label=f"gr-deadline:{peer.config.peer_id}",
            )
        peer.restart_deadline.start(deadline)

    def _flush_stale_routes(self, peer: _Peer) -> None:
        if peer.restart_deadline is not None:
            peer.restart_deadline.stop()
        dropped = peer.adj_in.flush_stale()
        if dropped:
            peer.stale_flushes += len(dropped)
        for route in dropped:
            self._reselect(route.prefix)

    # -- decision + export ---------------------------------------------------------

    def _candidates(self, prefix: Prefix) -> List[Route]:
        routes: List[Route] = []
        local = self._local_routes.get(prefix)
        if local is not None:
            routes.append(local)
        for peer in self._peers.values():
            routes.extend(peer.adj_in.routes_for(prefix))
        return routes

    def _reselect(self, prefix: Prefix) -> None:
        old = self.loc_rib.best(prefix)
        best, ranked = select_best(
            self._candidates(prefix), always_compare_med=self.always_compare_med
        )
        changed = self.loc_rib.set(prefix, best, ranked)
        if changed:
            if self.on_best_change is not None:
                self.on_best_change(prefix, old, best)
        # Export runs even when only the alternate set changed: ADD-PATH
        # peers see alternates, and a withdrawn alternate needs a withdraw.
        for peer in self._peers.values():
            if peer.session.established:
                self._export_prefix(peer, prefix)

    def _exportable(self, peer: _Peer, route: Route) -> Optional[Route]:
        """Apply export rules + policy; None means do not advertise."""
        config = peer.config
        ebgp_peer = config.remote_asn != self.asn
        attributes = route.attributes

        if NO_ADVERTISE in attributes.communities:
            return None
        if not route.local and not route.ebgp and not ebgp_peer:
            # iBGP-learned route to an iBGP peer: only a route reflector
            # may re-advertise, and only per RFC 4456 client rules.
            if not self._may_reflect(peer, route):
                return None
            attributes = attributes.reflected(
                _originator_of(route, self.router_id), self.cluster_id
            )
        if ebgp_peer:
            # NO_EXPORT stops *re-export* of learned routes at the AS edge.
            # A locally-originated route carrying the community is still
            # announced: the originator attached it for downstream ASes to
            # honor (how PEERING clients scope announcements to one peer).
            if NO_EXPORT in attributes.communities and not route.local:
                return None
            # Don't advertise a route back into the AS it came from: the
            # receiver would reject it anyway (loop detection).
            if attributes.as_path.contains(config.remote_asn):
                return None
            attributes = attributes.with_local_pref(None)
            if not route.local:
                # MED is non-transitive: only the originating neighbor AS's
                # MED crosses one AS boundary.
                attributes = attributes.with_med(None)
            attributes = attributes.prepended(self.asn)
            attributes = attributes.with_next_hop(config.local_address)
            # Reflection state is iBGP-internal.
            if attributes.originator_id is not None or attributes.cluster_list:
                attributes = _strip_reflection(attributes)
        else:
            if route.local or config.next_hop_self_ibgp or attributes.next_hop is None:
                attributes = attributes.with_next_hop(config.local_address)
            if attributes.local_pref is None:
                attributes = attributes.with_local_pref(100)

        candidate = route.with_attributes(attributes)
        result = config.export_policy.apply(candidate)
        if not result.permitted:
            return None
        return result.route

    def _may_reflect(self, peer: _Peer, route: Route) -> bool:
        """RFC 4456: reflect client routes to everyone, non-client routes
        only to clients."""
        source = self._peers.get(route.peer_id)
        if source is None:
            return False
        if source.config.route_reflector_client:
            return True
        return peer.config.route_reflector_client

    def _export_prefix(self, peer: _Peer, prefix: Prefix) -> None:
        """Bring peer's Adj-RIB-Out for ``prefix`` in sync with Loc-RIB."""
        if peer.session.add_path_active:
            ranked = [
                r
                for r in self.loc_rib.candidates(prefix)
                if r.peer_id != peer.config.peer_id
            ][: peer.config.add_path_limit]
            desired: Dict[Optional[int], Route] = {}
            for route in ranked:
                exported = self._exportable(peer, route)
                if exported is not None:
                    pid = peer.path_id_for(route)
                    desired[pid] = Route(
                        prefix=exported.prefix,
                        attributes=exported.attributes,
                        peer_asn=exported.peer_asn,
                        peer_id=exported.peer_id,
                        path_id=pid,
                        ebgp=exported.ebgp,
                        local=exported.local,
                        weight=exported.weight,
                        learned_at=exported.learned_at,
                    )
        else:
            best = self.loc_rib.best(prefix)
            desired = {}
            if best is not None and best.peer_id != peer.config.peer_id:
                exported = self._exportable(peer, best)
                if exported is not None:
                    desired[None] = Route(
                        prefix=exported.prefix,
                        attributes=exported.attributes,
                        peer_asn=exported.peer_asn,
                        peer_id=exported.peer_id,
                        path_id=None,
                        ebgp=exported.ebgp,
                        local=exported.local,
                        weight=exported.weight,
                        learned_at=exported.learned_at,
                    )

        current_ids = set(peer.adj_out.path_ids(prefix))
        desired_ids = set(desired)
        for pid in current_ids - desired_ids:
            peer.adj_out.withdraw(prefix, pid)
            self._queue_withdraw(peer, prefix, pid)
        for pid, route in desired.items():
            if peer.adj_out.advertise(route):
                self._queue_announce(peer, route)

    def _full_export(self, peer: _Peer) -> None:
        for prefix in set(self.loc_rib.prefixes()):
            self._export_prefix(peer, prefix)

    # -- update transmission (with optional MRAI batching) ----------------------

    def _queue_announce(self, peer: _Peer, route: Route) -> None:
        key = (route.prefix, route.path_id)
        peer.pending_withdraw.discard(key)
        peer.pending_announce[key] = route
        self._maybe_flush(peer)

    def _queue_withdraw(self, peer: _Peer, prefix: Prefix, path_id: Optional[int]) -> None:
        key = (prefix, path_id)
        peer.pending_announce.pop(key, None)
        peer.pending_withdraw.add(key)
        self._maybe_flush(peer)

    def _maybe_flush(self, peer: _Peer) -> None:
        if peer.config.mrai <= 0:
            self._flush(peer)
            return
        if peer.mrai_timer is None:
            peer.mrai_timer = self.engine.timer(
                peer.config.mrai, lambda: self._flush(peer), label=f"mrai:{peer.config.peer_id}"
            )
        if not peer.mrai_timer.running:
            peer.mrai_timer.start()

    def _flush(self, peer: _Peer) -> None:
        if not peer.session.established:
            peer.pending_announce.clear()
            peer.pending_withdraw.clear()
            return
        if peer.pending_withdraw:
            items = sorted(peer.pending_withdraw, key=lambda k: (k[0].key(), k[1] or 0))
            prefixes = [p for p, _ in items]
            if peer.session.add_path_active:
                peer.session.withdraw(prefixes, path_ids=[pid or 0 for _, pid in items])
            else:
                peer.session.withdraw(prefixes)
            peer.pending_withdraw.clear()
        if peer.pending_announce:
            # Group by identical attributes so one UPDATE carries many NLRI.
            groups: Dict[PathAttributes, List[Tuple[Prefix, Optional[int]]]] = {}
            for (prefix, pid), route in peer.pending_announce.items():
                groups.setdefault(route.attributes, []).append((prefix, pid))
            for attributes, entries in groups.items():
                entries.sort(key=lambda e: (e[0].key(), e[1] or 0))
                prefixes = [p for p, _ in entries]
                if peer.session.add_path_active:
                    peer.session.announce(
                        prefixes, attributes, path_ids=[pid or 0 for _, pid in entries]
                    )
                else:
                    peer.session.announce(prefixes, attributes)
            peer.pending_announce.clear()

    # -- introspection -------------------------------------------------------------

    def table_size(self) -> int:
        return len(self.loc_rib)

    def adj_in_size(self) -> int:
        return sum(len(p.adj_in) for p in self._peers.values())

    def best_route(self, prefix: Prefix) -> Optional[Route]:
        return self.loc_rib.best(prefix)

    def routes_received_from(self, peer_id: str) -> List[Route]:
        return list(self._peers[peer_id].adj_in.routes())

    def routes_sent_to(self, peer_id: str) -> List[Route]:
        return list(self._peers[peer_id].adj_out.routes())


def _originator_of(route: Route, default: IPAddress) -> IPAddress:
    if route.attributes.originator_id is not None:
        return route.attributes.originator_id
    # Best effort: use the route's peer id when it parses as an address.
    try:
        return IPAddress(route.peer_id)
    except Exception:
        return default


def _strip_reflection(attributes: PathAttributes) -> PathAttributes:
    from dataclasses import replace

    return replace(attributes, originator_id=None, cluster_list=())


def connect_routers(
    engine: Engine,
    left: BGPRouter,
    left_config: PeerConfig,
    right: BGPRouter,
    right_config: PeerConfig,
    start: bool = True,
) -> ChannelPair:
    """Wire two routers together with a fresh channel pair and (optionally)
    start the sessions immediately."""
    pair = ChannelPair(f"{left_config.peer_id}<->{right_config.peer_id}")
    left_session = left.add_peer(left_config, pair.a)
    right_session = right.add_peer(right_config, pair.b)
    if start:
        left_session.start()
        right_session.start()
    return pair
