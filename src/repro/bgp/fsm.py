"""The BGP finite state machine (RFC 4271 §8).

The FSM is factored out of the session so its transition table can be
tested exhaustively.  It models the six states and the events relevant to
a message-channel transport (there is no TCP SYN handling; "transport
connected" collapses Connect/Active into a single notion driven by the
channel layer).
"""

from __future__ import annotations

from enum import Enum, auto
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["State", "FsmEvent", "FsmError", "BGPStateMachine"]


class State(Enum):
    IDLE = auto()
    CONNECT = auto()
    ACTIVE = auto()
    OPEN_SENT = auto()
    OPEN_CONFIRM = auto()
    ESTABLISHED = auto()


class FsmEvent(Enum):
    MANUAL_START = auto()
    MANUAL_STOP = auto()
    AUTOMATIC_START = auto()  # IdleHold timer expired: retry without an operator
    TRANSPORT_CONNECTED = auto()
    TRANSPORT_FAILED = auto()
    OPEN_RECEIVED = auto()
    KEEPALIVE_RECEIVED = auto()
    UPDATE_RECEIVED = auto()
    NOTIFICATION_RECEIVED = auto()
    HOLD_TIMER_EXPIRED = auto()
    OPEN_INVALID = auto()


class FsmError(Exception):
    """An event arrived that is illegal in the current state."""


# (state, event) -> new state.  Events absent for a state are FSM errors,
# except the universally-resetting ones handled in `fire`.
_TRANSITIONS: Dict[Tuple[State, FsmEvent], State] = {
    (State.IDLE, FsmEvent.MANUAL_START): State.CONNECT,
    (State.IDLE, FsmEvent.AUTOMATIC_START): State.CONNECT,
    (State.CONNECT, FsmEvent.TRANSPORT_CONNECTED): State.OPEN_SENT,
    (State.CONNECT, FsmEvent.TRANSPORT_FAILED): State.ACTIVE,
    (State.ACTIVE, FsmEvent.TRANSPORT_CONNECTED): State.OPEN_SENT,
    (State.ACTIVE, FsmEvent.TRANSPORT_FAILED): State.ACTIVE,
    (State.OPEN_SENT, FsmEvent.OPEN_RECEIVED): State.OPEN_CONFIRM,
    # RFC 4271 §8.2.2: losing the transport in OpenSent retries via
    # Active; in OpenConfirm/Established the session restarts from Idle.
    (State.OPEN_SENT, FsmEvent.TRANSPORT_FAILED): State.ACTIVE,
    (State.OPEN_CONFIRM, FsmEvent.TRANSPORT_FAILED): State.IDLE,
    (State.ESTABLISHED, FsmEvent.TRANSPORT_FAILED): State.IDLE,
    (State.OPEN_CONFIRM, FsmEvent.KEEPALIVE_RECEIVED): State.ESTABLISHED,
    (State.ESTABLISHED, FsmEvent.KEEPALIVE_RECEIVED): State.ESTABLISHED,
    (State.ESTABLISHED, FsmEvent.UPDATE_RECEIVED): State.ESTABLISHED,
}

# Events that send any state back to IDLE.
_RESET_EVENTS = {
    FsmEvent.MANUAL_STOP,
    FsmEvent.NOTIFICATION_RECEIVED,
    FsmEvent.HOLD_TIMER_EXPIRED,
    FsmEvent.OPEN_INVALID,
}


class BGPStateMachine:
    """Tracks session state; optional observers see every transition."""

    def __init__(self) -> None:
        self.state = State.IDLE
        self.history: List[Tuple[State, FsmEvent, State]] = []
        self.observers: List[Callable[[State, FsmEvent, State], None]] = []

    def fire(self, event: FsmEvent) -> State:
        """Apply ``event``; returns the new state or raises FsmError."""
        if event in _RESET_EVENTS:
            new = State.IDLE
        else:
            key = (self.state, event)
            if key not in _TRANSITIONS:
                raise FsmError(f"event {event.name} illegal in state {self.state.name}")
            new = _TRANSITIONS[key]
        old, self.state = self.state, new
        self.history.append((old, event, new))
        for observer in self.observers:
            observer(old, event, new)
        return new

    @property
    def established(self) -> bool:
        return self.state == State.ESTABLISHED

    def can_fire(self, event: FsmEvent) -> bool:
        return event in _RESET_EVENTS or (self.state, event) in _TRANSITIONS
