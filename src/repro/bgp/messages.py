"""BGP-4 wire-format message codec (RFC 4271, 4-byte ASNs per RFC 6793,
ADD-PATH per RFC 7911, communities per RFC 1997).

Messages round-trip through real bytes: ``encode()`` produces the on-wire
representation (16-byte marker, length, type, body) and :func:`decode`
parses it back, raising :class:`MessageDecodeError` / :class:`UpdateError`
with the NOTIFICATION (code, subcode) a conformant speaker would send.

Simplifications relative to a kernel-adjacent implementation:

* AS_PATH is always encoded with 4-byte ASNs (we always negotiate the
  4-octet-AS capability, as modern speakers do; there is no AS4_PATH shim).
* MP-BGP is limited to the capability advertisement (AFI/SAFI pairs); NLRI
  for IPv6 rides the same encoding with 16-byte prefixes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..net.addr import IPAddress, Prefix
from .attributes import (
    ASPath,
    ASPathSegment,
    Community,
    Origin,
    PathAttributes,
    SegmentType,
)
from .errors import (
    ErrorCode,
    HeaderSub,
    MessageDecodeError,
    OpenError,
    OpenSub,
    UpdateError,
    UpdateSub,
)

__all__ = [
    "MessageType",
    "Capability",
    "AddPathDirection",
    "OpenMessage",
    "UpdateMessage",
    "NotificationMessage",
    "KeepaliveMessage",
    "RouteRefreshMessage",
    "decode",
    "MARKER",
    "HEADER_LEN",
    "MAX_MESSAGE_LEN",
    "AS_TRANS",
]

MARKER = b"\xff" * 16
HEADER_LEN = 19
MAX_MESSAGE_LEN = 4096
AS_TRANS = 23456

AFI_IPV4 = 1
AFI_IPV6 = 2
SAFI_UNICAST = 1


class MessageType(IntEnum):
    OPEN = 1
    UPDATE = 2
    NOTIFICATION = 3
    KEEPALIVE = 4
    ROUTE_REFRESH = 5


class CapabilityCode(IntEnum):
    MULTIPROTOCOL = 1
    ROUTE_REFRESH = 2
    GRACEFUL_RESTART = 64
    FOUR_OCTET_AS = 65
    ADD_PATH = 69


class AddPathDirection(IntEnum):
    RECEIVE = 1
    SEND = 2
    BOTH = 3


@dataclass(frozen=True)
class Capability:
    """A decoded capability TLV.  ``data`` holds the raw value bytes."""

    code: int
    data: bytes = b""

    @classmethod
    def multiprotocol(cls, afi: int = AFI_IPV4, safi: int = SAFI_UNICAST) -> "Capability":
        return cls(CapabilityCode.MULTIPROTOCOL, struct.pack("!HBB", afi, 0, safi))

    @classmethod
    def four_octet_as(cls, asn: int) -> "Capability":
        return cls(CapabilityCode.FOUR_OCTET_AS, struct.pack("!I", asn))

    @classmethod
    def add_path(
        cls,
        direction: AddPathDirection = AddPathDirection.BOTH,
        afi: int = AFI_IPV4,
        safi: int = SAFI_UNICAST,
    ) -> "Capability":
        return cls(CapabilityCode.ADD_PATH, struct.pack("!HBB", afi, safi, direction))

    @classmethod
    def graceful_restart(cls, restart_time: int, restarted: bool = False) -> "Capability":
        """RFC 4724 capability: 4 flag bits + 12-bit restart time (s).

        ``restarted`` sets the R bit (this speaker has just restarted and
        is re-establishing).  Per-AFI forwarding-state tuples are omitted:
        the helper-mode semantics we model do not need them.
        """
        if not 0 <= restart_time <= 0xFFF:
            raise ValueError(f"restart time {restart_time} outside 12-bit range")
        flags = 0x8 if restarted else 0
        return cls(CapabilityCode.GRACEFUL_RESTART, struct.pack("!H", (flags << 12) | restart_time))

    def graceful_restart_time(self) -> int:
        """The advertised restart time in seconds."""
        if self.code != CapabilityCode.GRACEFUL_RESTART or len(self.data) < 2:
            raise OpenError(
                "not a graceful-restart capability", OpenSub.UNSUPPORTED_CAPABILITY
            )
        return struct.unpack_from("!H", self.data, 0)[0] & 0xFFF

    def graceful_restart_flags(self) -> int:
        if self.code != CapabilityCode.GRACEFUL_RESTART or len(self.data) < 2:
            raise OpenError(
                "not a graceful-restart capability", OpenSub.UNSUPPORTED_CAPABILITY
            )
        return struct.unpack_from("!H", self.data, 0)[0] >> 12

    def four_octet_asn(self) -> int:
        if self.code != CapabilityCode.FOUR_OCTET_AS or len(self.data) != 4:
            raise OpenError("not a 4-octet-AS capability", OpenSub.UNSUPPORTED_CAPABILITY)
        return struct.unpack("!I", self.data)[0]

    def add_path_tuples(self) -> List[Tuple[int, int, int]]:
        """Decode ADD-PATH (afi, safi, direction) triples."""
        if self.code != CapabilityCode.ADD_PATH or len(self.data) % 4:
            raise OpenError("malformed ADD-PATH capability", OpenSub.UNSUPPORTED_CAPABILITY)
        return [
            struct.unpack("!HBB", self.data[i : i + 4])
            for i in range(0, len(self.data), 4)
        ]


def _encode_header(kind: MessageType, body: bytes) -> bytes:
    length = HEADER_LEN + len(body)
    if length > MAX_MESSAGE_LEN:
        raise MessageDecodeError(
            f"message length {length} exceeds {MAX_MESSAGE_LEN}",
            HeaderSub.BAD_MESSAGE_LENGTH,
        )
    return MARKER + struct.pack("!HB", length, kind) + body


def _encode_prefix(prefix: Prefix, path_id: Optional[int] = None) -> bytes:
    nbytes = (prefix.length + 7) // 8
    packed = prefix.address.packed()[:nbytes]
    out = b"" if path_id is None else struct.pack("!I", path_id)
    return out + bytes([prefix.length]) + packed


def _decode_prefixes(
    data: bytes, version: int, add_path: bool
) -> List[Tuple[Optional[int], Prefix]]:
    bits = 32 if version == 4 else 128
    out: List[Tuple[Optional[int], Prefix]] = []
    i = 0
    while i < len(data):
        path_id: Optional[int] = None
        if add_path:
            if i + 4 >= len(data):
                raise UpdateError("truncated ADD-PATH path id", UpdateSub.INVALID_NETWORK_FIELD)
            path_id = struct.unpack_from("!I", data, i)[0]
            i += 4
        length = data[i]
        i += 1
        if length > bits:
            raise UpdateError(f"prefix length {length} > {bits}", UpdateSub.INVALID_NETWORK_FIELD)
        nbytes = (length + 7) // 8
        if i + nbytes > len(data):
            raise UpdateError("truncated NLRI", UpdateSub.INVALID_NETWORK_FIELD)
        raw = data[i : i + nbytes] + b"\x00" * (bits // 8 - nbytes)
        i += nbytes
        address = IPAddress(int.from_bytes(raw, "big"), version)
        out.append((path_id, Prefix(address, length, strict=False)))
    return out


@dataclass
class OpenMessage:
    """BGP OPEN: version, ASN, hold time, router id, capabilities."""

    asn: int
    hold_time: int
    bgp_id: IPAddress
    capabilities: Tuple[Capability, ...] = ()
    version: int = 4

    def capability(self, code: int) -> Optional[Capability]:
        for cap in self.capabilities:
            if cap.code == code:
                return cap
        return None

    @property
    def real_asn(self) -> int:
        """The 4-byte ASN if advertised, else the header ASN."""
        cap = self.capability(CapabilityCode.FOUR_OCTET_AS)
        return cap.four_octet_asn() if cap is not None else self.asn

    @property
    def supports_add_path(self) -> bool:
        return self.capability(CapabilityCode.ADD_PATH) is not None

    @property
    def supports_graceful_restart(self) -> bool:
        return self.capability(CapabilityCode.GRACEFUL_RESTART) is not None

    @property
    def graceful_restart_time(self) -> Optional[int]:
        """Peer's advertised restart time, or None if not advertised."""
        cap = self.capability(CapabilityCode.GRACEFUL_RESTART)
        if cap is None:
            return None
        return cap.graceful_restart_time()

    def encode(self) -> bytes:
        header_asn = self.asn if self.asn <= 0xFFFF else AS_TRANS
        caps = b""
        for cap in self.capabilities:
            caps += bytes([cap.code, len(cap.data)]) + cap.data
        params = b""
        if caps:
            params = bytes([2, len(caps)]) + caps  # parameter type 2 = capabilities
        body = (
            struct.pack("!BHH", self.version, header_asn, self.hold_time)
            + self.bgp_id.packed()
            + bytes([len(params)])
            + params
        )
        return _encode_header(MessageType.OPEN, body)

    @classmethod
    def decode_body(cls, body: bytes) -> "OpenMessage":
        if len(body) < 10:
            raise OpenError("OPEN too short", OpenSub.UNSUPPORTED_VERSION)
        version, asn, hold_time = struct.unpack_from("!BHH", body, 0)
        if version != 4:
            raise OpenError(f"unsupported BGP version {version}", OpenSub.UNSUPPORTED_VERSION)
        if hold_time in (1, 2):
            raise OpenError(f"unacceptable hold time {hold_time}", OpenSub.UNACCEPTABLE_HOLD_TIME)
        bgp_id = IPAddress.from_packed(body[5:9])
        params_len = body[9]
        params = body[10 : 10 + params_len]
        if len(params) != params_len:
            raise OpenError("truncated OPEN parameters", OpenSub.UNSUPPORTED_OPTIONAL_PARAMETER)
        capabilities: List[Capability] = []
        i = 0
        while i < len(params):
            if i + 2 > len(params):
                raise OpenError("truncated optional parameter", OpenSub.UNSUPPORTED_OPTIONAL_PARAMETER)
            ptype, plen = params[i], params[i + 1]
            value = params[i + 2 : i + 2 + plen]
            if len(value) != plen:
                raise OpenError("truncated optional parameter", OpenSub.UNSUPPORTED_OPTIONAL_PARAMETER)
            i += 2 + plen
            if ptype != 2:
                raise OpenError(
                    f"unsupported optional parameter {ptype}",
                    OpenSub.UNSUPPORTED_OPTIONAL_PARAMETER,
                )
            j = 0
            while j < len(value):
                if j + 2 > len(value):
                    raise OpenError("truncated capability", OpenSub.UNSUPPORTED_CAPABILITY)
                code, clen = value[j], value[j + 1]
                cdata = value[j + 2 : j + 2 + clen]
                if len(cdata) != clen:
                    raise OpenError("truncated capability", OpenSub.UNSUPPORTED_CAPABILITY)
                capabilities.append(Capability(code, cdata))
                j += 2 + clen
        msg = cls(
            asn=asn,
            hold_time=hold_time,
            bgp_id=bgp_id,
            capabilities=tuple(capabilities),
            version=version,
        )
        return msg


# --- Path attribute codes -------------------------------------------------

ATTR_ORIGIN = 1
ATTR_AS_PATH = 2
ATTR_NEXT_HOP = 3
ATTR_MED = 4
ATTR_LOCAL_PREF = 5
ATTR_ATOMIC_AGGREGATE = 6
ATTR_AGGREGATOR = 7
ATTR_COMMUNITIES = 8
ATTR_ORIGINATOR_ID = 9
ATTR_CLUSTER_LIST = 10

_FLAG_OPTIONAL = 0x80
_FLAG_TRANSITIVE = 0x40
_FLAG_EXTENDED = 0x10


def _encode_attr(code: int, flags: int, value: bytes) -> bytes:
    if len(value) > 255:
        return bytes([flags | _FLAG_EXTENDED, code]) + struct.pack("!H", len(value)) + value
    return bytes([flags, code, len(value)]) + value


def _encode_attributes(attrs: PathAttributes) -> bytes:
    out = _encode_attr(ATTR_ORIGIN, _FLAG_TRANSITIVE, bytes([attrs.origin]))
    path = b""
    for segment in attrs.as_path.segments:
        path += bytes([segment.kind, len(segment.asns)])
        for asn in segment.asns:
            path += struct.pack("!I", asn)
    out += _encode_attr(ATTR_AS_PATH, _FLAG_TRANSITIVE, path)
    if attrs.next_hop is not None:
        out += _encode_attr(ATTR_NEXT_HOP, _FLAG_TRANSITIVE, attrs.next_hop.packed())
    if attrs.med is not None:
        out += _encode_attr(ATTR_MED, _FLAG_OPTIONAL, struct.pack("!I", attrs.med))
    if attrs.local_pref is not None:
        out += _encode_attr(ATTR_LOCAL_PREF, _FLAG_TRANSITIVE, struct.pack("!I", attrs.local_pref))
    if attrs.atomic_aggregate:
        out += _encode_attr(ATTR_ATOMIC_AGGREGATE, _FLAG_TRANSITIVE, b"")
    if attrs.aggregator is not None:
        asn, addr = attrs.aggregator
        out += _encode_attr(
            ATTR_AGGREGATOR,
            _FLAG_OPTIONAL | _FLAG_TRANSITIVE,
            struct.pack("!I", asn) + addr.packed(),
        )
    if attrs.communities:
        packed = b"".join(
            struct.pack("!I", c.packed()) for c in sorted(attrs.communities)
        )
        out += _encode_attr(ATTR_COMMUNITIES, _FLAG_OPTIONAL | _FLAG_TRANSITIVE, packed)
    if attrs.originator_id is not None:
        out += _encode_attr(ATTR_ORIGINATOR_ID, _FLAG_OPTIONAL, attrs.originator_id.packed())
    if attrs.cluster_list:
        packed = b"".join(struct.pack("!I", c) for c in attrs.cluster_list)
        out += _encode_attr(ATTR_CLUSTER_LIST, _FLAG_OPTIONAL, packed)
    return out


def _decode_attributes(data: bytes) -> PathAttributes:
    origin: Optional[Origin] = None
    segments: List[ASPathSegment] = []
    saw_as_path = False
    next_hop: Optional[IPAddress] = None
    med: Optional[int] = None
    local_pref: Optional[int] = None
    atomic = False
    aggregator: Optional[Tuple[int, IPAddress]] = None
    communities: Set[Community] = set()
    originator_id: Optional[IPAddress] = None
    cluster_list: Tuple[int, ...] = ()
    seen: Set[int] = set()

    i = 0
    while i < len(data):
        if i + 3 > len(data):
            raise UpdateError("truncated attribute header", UpdateSub.ATTRIBUTE_LENGTH_ERROR)
        flags, code = data[i], data[i + 1]
        if flags & _FLAG_EXTENDED:
            if i + 4 > len(data):
                raise UpdateError("truncated extended attribute", UpdateSub.ATTRIBUTE_LENGTH_ERROR)
            length = struct.unpack_from("!H", data, i + 2)[0]
            i += 4
        else:
            length = data[i + 2]
            i += 3
        value = data[i : i + length]
        if len(value) != length:
            raise UpdateError("truncated attribute value", UpdateSub.ATTRIBUTE_LENGTH_ERROR)
        i += length
        if code in seen:
            raise UpdateError(f"duplicate attribute {code}", UpdateSub.MALFORMED_ATTRIBUTE_LIST)
        seen.add(code)

        if code == ATTR_ORIGIN:
            if length != 1 or value[0] > 2:
                raise UpdateError("invalid ORIGIN", UpdateSub.INVALID_ORIGIN)
            origin = Origin(value[0])
        elif code == ATTR_AS_PATH:
            saw_as_path = True
            j = 0
            while j < len(value):
                if j + 2 > len(value):
                    raise UpdateError("truncated AS_PATH segment", UpdateSub.MALFORMED_AS_PATH)
                kind, count = value[j], value[j + 1]
                j += 2
                if kind not in (SegmentType.AS_SET, SegmentType.AS_SEQUENCE):
                    raise UpdateError(f"bad segment type {kind}", UpdateSub.MALFORMED_AS_PATH)
                need = count * 4
                if j + need > len(value) or count == 0:
                    raise UpdateError("truncated AS_PATH asns", UpdateSub.MALFORMED_AS_PATH)
                asns = struct.unpack_from(f"!{count}I", value, j)
                j += need
                segments.append(ASPathSegment(SegmentType(kind), tuple(asns)))
        elif code == ATTR_NEXT_HOP:
            if length not in (4, 16):
                raise UpdateError("bad NEXT_HOP length", UpdateSub.INVALID_NEXT_HOP)
            next_hop = IPAddress.from_packed(value)
        elif code == ATTR_MED:
            if length != 4:
                raise UpdateError("bad MED length", UpdateSub.ATTRIBUTE_LENGTH_ERROR)
            med = struct.unpack("!I", value)[0]
        elif code == ATTR_LOCAL_PREF:
            if length != 4:
                raise UpdateError("bad LOCAL_PREF length", UpdateSub.ATTRIBUTE_LENGTH_ERROR)
            local_pref = struct.unpack("!I", value)[0]
        elif code == ATTR_ATOMIC_AGGREGATE:
            if length != 0:
                raise UpdateError("bad ATOMIC_AGGREGATE length", UpdateSub.ATTRIBUTE_LENGTH_ERROR)
            atomic = True
        elif code == ATTR_AGGREGATOR:
            if length != 8:
                raise UpdateError("bad AGGREGATOR length", UpdateSub.ATTRIBUTE_LENGTH_ERROR)
            asn = struct.unpack("!I", value[:4])[0]
            aggregator = (asn, IPAddress.from_packed(value[4:]))
        elif code == ATTR_COMMUNITIES:
            if length % 4:
                raise UpdateError("bad COMMUNITIES length", UpdateSub.OPTIONAL_ATTRIBUTE_ERROR)
            for k in range(0, length, 4):
                communities.add(Community.from_packed(struct.unpack_from("!I", value, k)[0]))
        elif code == ATTR_ORIGINATOR_ID:
            if length != 4:
                raise UpdateError("bad ORIGINATOR_ID length", UpdateSub.OPTIONAL_ATTRIBUTE_ERROR)
            originator_id = IPAddress.from_packed(value)
        elif code == ATTR_CLUSTER_LIST:
            if length % 4:
                raise UpdateError("bad CLUSTER_LIST length", UpdateSub.OPTIONAL_ATTRIBUTE_ERROR)
            cluster_list = tuple(
                struct.unpack_from("!I", value, k)[0] for k in range(0, length, 4)
            )
        elif not flags & _FLAG_OPTIONAL:
            raise UpdateError(
                f"unrecognized well-known attribute {code}",
                UpdateSub.UNRECOGNIZED_WELLKNOWN_ATTRIBUTE,
            )
        # Unrecognized optional attributes are silently ignored (transitive
        # re-propagation is out of scope).

    if origin is None:
        raise UpdateError("missing ORIGIN", UpdateSub.MISSING_WELLKNOWN_ATTRIBUTE)
    if not saw_as_path:
        raise UpdateError("missing AS_PATH", UpdateSub.MISSING_WELLKNOWN_ATTRIBUTE)
    return PathAttributes(
        origin=origin,
        as_path=ASPath(tuple(segments)),
        next_hop=next_hop,
        med=med,
        local_pref=local_pref,
        communities=frozenset(communities),
        atomic_aggregate=atomic,
        aggregator=aggregator,
        originator_id=originator_id,
        cluster_list=cluster_list,
    )


@dataclass
class UpdateMessage:
    """BGP UPDATE: withdrawals + (attributes, NLRI) announcements.

    With ``add_path=True`` every NLRI entry carries a path identifier
    (RFC 7911); entries are then ``(path_id, prefix)`` pairs.
    """

    nlri: Tuple[Tuple[Optional[int], Prefix], ...] = ()
    withdrawn: Tuple[Tuple[Optional[int], Prefix], ...] = ()
    attributes: Optional[PathAttributes] = None
    add_path: bool = False

    @classmethod
    def announce(
        cls,
        prefixes: Sequence[Prefix],
        attributes: PathAttributes,
        path_ids: Optional[Sequence[int]] = None,
    ) -> "UpdateMessage":
        if path_ids is not None:
            if len(path_ids) != len(prefixes):
                raise ValueError("path_ids must align with prefixes")
            nlri = tuple(zip(path_ids, prefixes))
            return cls(nlri=nlri, attributes=attributes, add_path=True)
        return cls(nlri=tuple((None, p) for p in prefixes), attributes=attributes)

    @classmethod
    def withdraw(
        cls, prefixes: Sequence[Prefix], path_ids: Optional[Sequence[int]] = None
    ) -> "UpdateMessage":
        if path_ids is not None:
            if len(path_ids) != len(prefixes):
                raise ValueError("path_ids must align with prefixes")
            return cls(withdrawn=tuple(zip(path_ids, prefixes)), add_path=True)
        return cls(withdrawn=tuple((None, p) for p in prefixes))

    @classmethod
    def end_of_rib(cls) -> "UpdateMessage":
        """The RFC 4724 End-of-RIB marker: an empty UPDATE."""
        return cls()

    @property
    def is_end_of_rib(self) -> bool:
        return not self.nlri and not self.withdrawn and self.attributes is None

    def prefixes(self) -> List[Prefix]:
        return [p for _, p in self.nlri]

    def withdrawn_prefixes(self) -> List[Prefix]:
        return [p for _, p in self.withdrawn]

    def encode(self) -> bytes:
        withdrawn = b"".join(_encode_prefix(p, pid) for pid, p in self.withdrawn)
        attrs = b"" if self.attributes is None else _encode_attributes(self.attributes)
        nlri = b"".join(_encode_prefix(p, pid) for pid, p in self.nlri)
        if self.nlri and self.attributes is None:
            raise UpdateError("NLRI without attributes", UpdateSub.MISSING_WELLKNOWN_ATTRIBUTE)
        body = (
            struct.pack("!H", len(withdrawn))
            + withdrawn
            + struct.pack("!H", len(attrs))
            + attrs
            + nlri
        )
        return _encode_header(MessageType.UPDATE, body)

    @classmethod
    def decode_body(cls, body: bytes, add_path: bool = False, version: int = 4) -> "UpdateMessage":
        if len(body) < 4:
            raise UpdateError("UPDATE too short", UpdateSub.MALFORMED_ATTRIBUTE_LIST)
        withdrawn_len = struct.unpack_from("!H", body, 0)[0]
        if 2 + withdrawn_len + 2 > len(body):
            raise UpdateError("bad withdrawn length", UpdateSub.MALFORMED_ATTRIBUTE_LIST)
        withdrawn = _decode_prefixes(body[2 : 2 + withdrawn_len], version, add_path)
        i = 2 + withdrawn_len
        attrs_len = struct.unpack_from("!H", body, i)[0]
        i += 2
        if i + attrs_len > len(body):
            raise UpdateError("bad attribute length", UpdateSub.MALFORMED_ATTRIBUTE_LIST)
        attrs_data = body[i : i + attrs_len]
        i += attrs_len
        nlri = _decode_prefixes(body[i:], version, add_path)
        attributes = _decode_attributes(attrs_data) if attrs_data else None
        if nlri and attributes is None:
            raise UpdateError("NLRI without attributes", UpdateSub.MISSING_WELLKNOWN_ATTRIBUTE)
        return cls(
            nlri=tuple(nlri),
            withdrawn=tuple(withdrawn),
            attributes=attributes,
            add_path=add_path,
        )


@dataclass
class NotificationMessage:
    code: int
    subcode: int = 0
    data: bytes = b""

    def encode(self) -> bytes:
        return _encode_header(
            MessageType.NOTIFICATION, bytes([self.code, self.subcode]) + self.data
        )

    @classmethod
    def decode_body(cls, body: bytes) -> "NotificationMessage":
        if len(body) < 2:
            raise MessageDecodeError("NOTIFICATION too short", HeaderSub.BAD_MESSAGE_LENGTH)
        return cls(code=body[0], subcode=body[1], data=body[2:])

    def __str__(self) -> str:
        try:
            name = ErrorCode(self.code).name
        except ValueError:
            name = str(self.code)
        return f"NOTIFICATION {name}/{self.subcode}"


@dataclass
class KeepaliveMessage:
    def encode(self) -> bytes:
        return _encode_header(MessageType.KEEPALIVE, b"")


@dataclass
class RouteRefreshMessage:
    afi: int = AFI_IPV4
    safi: int = SAFI_UNICAST

    def encode(self) -> bytes:
        return _encode_header(
            MessageType.ROUTE_REFRESH, struct.pack("!HBB", self.afi, 0, self.safi)
        )

    @classmethod
    def decode_body(cls, body: bytes) -> "RouteRefreshMessage":
        if len(body) != 4:
            raise MessageDecodeError("bad ROUTE_REFRESH length", HeaderSub.BAD_MESSAGE_LENGTH)
        afi, _, safi = struct.unpack("!HBB", body)
        return cls(afi=afi, safi=safi)


def decode(data: bytes, add_path: bool = False, version: int = 4):
    """Decode one full message from ``data`` (which must be exactly one).

    ``add_path`` must reflect the session's negotiated ADD-PATH state since
    the path-id framing is not self-describing.
    """
    if len(data) < HEADER_LEN:
        raise MessageDecodeError("short header", HeaderSub.BAD_MESSAGE_LENGTH)
    if data[:16] != MARKER:
        raise MessageDecodeError(
            "bad marker", HeaderSub.CONNECTION_NOT_SYNCHRONIZED
        )
    length, kind = struct.unpack_from("!HB", data, 16)
    if length != len(data) or length > MAX_MESSAGE_LEN:
        raise MessageDecodeError(f"bad length {length}", HeaderSub.BAD_MESSAGE_LENGTH)
    body = data[HEADER_LEN:]
    if kind == MessageType.OPEN:
        return OpenMessage.decode_body(body)
    if kind == MessageType.UPDATE:
        return UpdateMessage.decode_body(body, add_path=add_path, version=version)
    if kind == MessageType.NOTIFICATION:
        return NotificationMessage.decode_body(body)
    if kind == MessageType.KEEPALIVE:
        if body:
            raise MessageDecodeError("KEEPALIVE with body", HeaderSub.BAD_MESSAGE_LENGTH)
        return KeepaliveMessage()
    if kind == MessageType.ROUTE_REFRESH:
        return RouteRefreshMessage.decode_body(body)
    raise MessageDecodeError(f"bad message type {kind}", HeaderSub.BAD_MESSAGE_TYPE)
