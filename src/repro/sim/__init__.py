"""Discrete-event simulation kernel."""

from .engine import Engine, Event, SimulationError, Timer

__all__ = ["Engine", "Event", "Timer", "SimulationError"]
