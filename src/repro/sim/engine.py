"""Discrete-event simulation kernel.

Everything time-driven in the library — BGP keepalive/hold timers, MRAI,
route-flap-damping decay, scheduled announcements — runs on this engine.
It is a classic calendar queue: callbacks scheduled at simulated times,
executed in time order, with stable FIFO ordering for simultaneous events.

The engine is intentionally synchronous and deterministic: given the same
seedable inputs the same run is reproduced exactly, which the test suite
relies on.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = ["SimulationError", "Event", "Timer", "Engine"]


class SimulationError(Exception):
    """Raised for scheduling in the past or running a broken engine."""


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering: time, then insertion sequence."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class Timer:
    """A restartable one-shot timer bound to an engine.

    Mirrors the timers in a BGP implementation: ``start`` (re)arms it,
    ``stop`` disarms, and the callback fires once when it expires.
    """

    def __init__(self, engine: "Engine", interval: float, action: Callable[[], None], label: str = "timer"):
        self._engine = engine
        self.interval = interval
        self._action = action
        self._event: Optional[Event] = None
        self.label = label

    @property
    def running(self) -> bool:
        return self._event is not None and not self._event.cancelled

    def start(self, interval: Optional[float] = None) -> None:
        """(Re)arm the timer ``interval`` (default: configured) from now."""
        if interval is not None:
            self.interval = interval
        self.stop()
        self._event = self._engine.schedule(self.interval, self._fire, label=self.label)

    def stop(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._action()


class Engine:
    """The event loop.  ``schedule`` relative, ``schedule_at`` absolute."""

    def __init__(self, seed: int = 0) -> None:
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self.now = 0.0
        self.processed = 0
        self._running = False
        self.seed = seed
        self._rngs: Dict[str, random.Random] = {}

    def rng(self, label: str = "") -> random.Random:
        """A named random stream, seeded from ``(engine seed, label)``.

        Every consumer of randomness (fault injection, reconnect jitter)
        draws from its own labelled stream, so adding one consumer does
        not perturb another's sequence and a seeded run replays exactly.
        String seeding is hash-stable across processes.
        """
        stream = self._rngs.get(label)
        if stream is None:
            stream = random.Random(f"{self.seed}\x00{label}")
            self._rngs[label] = stream
        return stream

    def schedule(self, delay: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` to run ``delay`` simulated seconds from now."""
        return self.schedule_at(self.now + delay, action, label=label)

    def schedule_at(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        if time < self.now:
            raise SimulationError(f"cannot schedule at {time} < now {self.now}")
        event = Event(time=time, seq=next(self._seq), action=action, label=label)
        heapq.heappush(self._queue, event)
        return event

    def timer(self, interval: float, action: Callable[[], None], label: str = "timer") -> Timer:
        return Timer(self, interval, action, label=label)

    def pending(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            self.processed += 1
            event.action()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 1_000_000) -> int:
        """Run events until the queue empties or ``until`` is reached.

        Returns the number of events processed.  ``max_events`` guards
        against livelock (e.g. a protocol bug producing an update storm) —
        exceeding it raises :class:`SimulationError` rather than hanging.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run)")
        self._running = True
        count = 0
        try:
            while self._queue:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    break
                if count >= max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events at t={self.now}; livelock?"
                    )
                if self.step():
                    count += 1
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False
        return count

    def run_for(self, duration: float, max_events: int = 1_000_000) -> int:
        """Run for ``duration`` simulated seconds from now."""
        return self.run(until=self.now + duration, max_events=max_events)
