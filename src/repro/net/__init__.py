"""Addressing, prefix-trie, packet, tunnel, and channel substrate."""

from .addr import AddressError, IPAddress, Prefix, parse_address, parse_prefix
from .channel import ChannelClosed, ChannelPair, Endpoint
from .packet import Packet, PacketError, icmp_echo_reply, icmp_ttl_exceeded
from .trie import PrefixTrie
from .tunnel import Tunnel, TunnelEndpoint, TunnelError

__all__ = [
    "AddressError",
    "IPAddress",
    "Prefix",
    "parse_address",
    "parse_prefix",
    "PrefixTrie",
    "Packet",
    "PacketError",
    "icmp_echo_reply",
    "icmp_ttl_exceeded",
    "Tunnel",
    "TunnelEndpoint",
    "TunnelError",
    "ChannelPair",
    "ChannelClosed",
    "Endpoint",
]
