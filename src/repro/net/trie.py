"""Binary radix trie keyed by IP prefixes.

Provides the two lookups routers need constantly:

* **Longest-prefix match** (:meth:`PrefixTrie.lookup`) for forwarding.
* **Covered / covering enumeration** for filter evaluation and aggregation.

The trie is also the engine behind the PEERING prefix pool
(:class:`repro.core.allocation.PrefixPool`), which needs first-fit free-block
allocation out of a covering prefix.

Descent is pure integer shift/mask arithmetic on the prefix's address
value — one ``(value >> shift) & 1`` per level, no per-bit generator —
which roughly halves insert/lookup cost at forwarding-table scale (see
``benchmarks/bench_trie.py``).
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, List, Optional, Tuple, TypeVar, Union

from .addr import IPAddress, Prefix

__all__ = ["PrefixTrie"]

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: List[Optional["_Node[V]"]] = [None, None]
        self.value: Optional[V] = None
        self.has_value = False


class PrefixTrie(Generic[V]):
    """A mapping from :class:`Prefix` to arbitrary values with LPM lookup.

    One trie holds one address family; mixing IPv4 and IPv6 keys raises
    ``ValueError``.  Behaves like a mutable mapping for its core operations
    (``trie[prefix] = value``, ``prefix in trie``, ``del trie[prefix]``,
    ``len(trie)``) and adds router-style queries on top.
    """

    def __init__(self, version: int = 4):
        if version not in (4, 6):
            raise ValueError(f"unknown IP version {version}")
        self._version = version
        self._bits = 32 if version == 4 else 128
        self._root: _Node[V] = _Node()
        self._size = 0

    @property
    def version(self) -> int:
        return self._version

    def _check(self, prefix: Prefix) -> None:
        if prefix.version != self._version:
            raise ValueError(
                f"IPv{prefix.version} prefix in IPv{self._version} trie"
            )

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert or replace the value stored at ``prefix``."""
        self._check(prefix)
        node = self._root
        addr = prefix.address.value
        shift = self._bits
        for _ in range(prefix.length):
            shift -= 1
            bit = (addr >> shift) & 1
            child = node.children[bit]
            if child is None:
                child = node.children[bit] = _Node()
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def __setitem__(self, prefix: Prefix, value: V) -> None:
        self.insert(prefix, value)

    def get(self, prefix: Prefix, default: Optional[V] = None) -> Optional[V]:
        """Exact-match lookup."""
        self._check(prefix)
        node = self._root
        addr = prefix.address.value
        shift = self._bits
        for _ in range(prefix.length):
            shift -= 1
            node = node.children[(addr >> shift) & 1]
            if node is None:
                return default
        return node.value if node.has_value else default

    def __getitem__(self, prefix: Prefix) -> V:
        sentinel = object()
        value = self.get(prefix, sentinel)  # type: ignore[arg-type]
        if value is sentinel:
            raise KeyError(prefix)
        return value  # type: ignore[return-value]

    def __contains__(self, prefix: Prefix) -> bool:
        sentinel = object()
        return self.get(prefix, sentinel) is not sentinel  # type: ignore[arg-type]

    def remove(self, prefix: Prefix) -> V:
        """Remove and return the value at ``prefix``; KeyError if absent."""
        self._check(prefix)
        path: List[Tuple[_Node[V], int]] = []
        node = self._root
        addr = prefix.address.value
        shift = self._bits
        for _ in range(prefix.length):
            shift -= 1
            bit = (addr >> shift) & 1
            child = node.children[bit]
            if child is None:
                raise KeyError(prefix)
            path.append((node, bit))
            node = child
        if not node.has_value:
            raise KeyError(prefix)
        value = node.value
        node.value = None
        node.has_value = False
        self._size -= 1
        # Prune now-empty leaf chain.
        while path and not node.has_value and node.children[0] is None and node.children[1] is None:
            parent, bit = path.pop()
            parent.children[bit] = None
            node = parent
        return value  # type: ignore[return-value]

    def __delitem__(self, prefix: Prefix) -> None:
        self.remove(prefix)

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def lookup(self, target: Union[IPAddress, Prefix]) -> Optional[Tuple[Prefix, V]]:
        """Longest-prefix match for an address (or prefix) — the forwarding op.

        Returns ``(matching_prefix, value)`` or ``None`` when nothing covers
        the target.
        """
        if isinstance(target, IPAddress):
            target = Prefix(target, target.bits)
        self._check(target)
        bits = self._bits
        node = self._root
        addr = target.address.value
        # Track only the best depth/node during descent; materialize the
        # winning Prefix once at the end instead of per candidate.
        best_node: Optional[_Node[V]] = self._root if self._root.has_value else None
        best_depth = 0
        depth = 0
        length = target.length
        shift = bits
        while depth < length:
            shift -= 1
            node = node.children[(addr >> shift) & 1]
            if node is None:
                break
            depth += 1
            if node.has_value:
                best_node = node
                best_depth = depth
        if best_node is None:
            return None
        if best_depth:
            mask = ((1 << best_depth) - 1) << (bits - best_depth)
            net = IPAddress(addr & mask, self._version)
        else:
            net = IPAddress(0, self._version)
        return Prefix(net, best_depth), best_node.value  # type: ignore[return-value]

    def covering(self, target: Prefix) -> Iterator[Tuple[Prefix, V]]:
        """Yield (prefix, value) for every stored prefix that covers ``target``.

        Yielded shortest (least specific) first; includes an exact match.
        """
        self._check(target)
        bits = self._bits
        node = self._root
        addr = target.address.value
        if node.has_value:
            yield Prefix(IPAddress(0, self._version), 0), node.value  # type: ignore[misc]
        for depth in range(1, target.length + 1):
            node = node.children[(addr >> (bits - depth)) & 1]
            if node is None:
                return
            if node.has_value:
                mask = ((1 << depth) - 1) << (bits - depth)
                yield Prefix(IPAddress(addr & mask, self._version), depth), node.value  # type: ignore[misc]

    def covered(self, target: Prefix) -> Iterator[Tuple[Prefix, V]]:
        """Yield (prefix, value) for every stored prefix within ``target``.

        Includes an exact match; yielded in address order.
        """
        self._check(target)
        node = self._root
        addr = target.address.value
        shift = self._bits
        for _ in range(target.length):
            shift -= 1
            node = node.children[(addr >> shift) & 1]
            if node is None:
                return
        yield from self._walk(node, addr, target.length)

    def _walk(self, node: _Node[V], address: int, depth: int) -> Iterator[Tuple[Prefix, V]]:
        if node.has_value:
            yield Prefix(IPAddress(address, self._version), depth), node.value  # type: ignore[misc]
        for bit in (0, 1):
            child = node.children[bit]
            if child is not None:
                child_addr = address | (bit << (self._bits - depth - 1))
                yield from self._walk(child, child_addr, depth + 1)

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        """All (prefix, value) pairs in address order."""
        yield from self._walk(self._root, 0, 0)

    def keys(self) -> Iterator[Prefix]:
        for prefix, _ in self.items():
            yield prefix

    def values(self) -> Iterator[V]:
        for _, value in self.items():
            yield value

    def __iter__(self) -> Iterator[Prefix]:
        return self.keys()

    def first_free(self, within: Prefix, length: int) -> Optional[Prefix]:
        """First /``length`` inside ``within`` that neither covers nor is
        covered by any stored prefix — the allocation primitive for prefix
        pools.  Returns ``None`` when the block is exhausted.
        """
        self._check(within)
        if length < within.length or length > self._bits:
            raise ValueError(f"cannot allocate /{length} inside {within}")
        for candidate in within.subnets(length):
            if next(self.covered(candidate), None) is not None:
                continue
            covering = [p for p, _ in self.covering(candidate)]
            if covering:
                continue
            return candidate
        return None
