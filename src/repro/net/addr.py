"""IP addressing primitives: addresses and prefixes for IPv4 and IPv6.

These are implemented from scratch (rather than wrapping :mod:`ipaddress`)
because the rest of the library needs cheap integer math on addresses,
hashable immutable prefixes suitable for use as RIB keys, and helpers such
as subnetting iterators and supernet tests that match router semantics.

The two central types are :class:`IPAddress` and :class:`Prefix`.  Both are
immutable and ordered; prefixes order first by address then by length, which
gives the conventional "more specifics sort after their covering prefix"
ordering used throughout the RIB code.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterator, Tuple, Union

__all__ = [
    "AddressError",
    "IPAddress",
    "Prefix",
    "parse_prefix",
    "parse_address",
]

_V4_BITS = 32
_V6_BITS = 128
_V4_MAX = (1 << _V4_BITS) - 1
_V6_MAX = (1 << _V6_BITS) - 1


class AddressError(ValueError):
    """Raised for malformed addresses or prefixes."""


def _parse_v4(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError(f"invalid IPv4 address {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
            raise AddressError(f"invalid IPv4 octet {part!r} in {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"IPv4 octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def _format_v4(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def _parse_v6(text: str) -> int:
    """Parse an IPv6 address in RFC 4291 text form (including ``::``)."""
    if text.count("::") > 1:
        raise AddressError(f"multiple '::' in {text!r}")
    if "::" in text:
        head, _, tail = text.partition("::")
        head_groups = head.split(":") if head else []
        tail_groups = tail.split(":") if tail else []
        missing = 8 - (len(head_groups) + len(tail_groups))
        if missing < 1:
            raise AddressError(f"'::' expands to nothing in {text!r}")
        groups = head_groups + ["0"] * missing + tail_groups
    else:
        groups = text.split(":")
    if len(groups) != 8:
        raise AddressError(f"invalid IPv6 address {text!r}")
    value = 0
    for group in groups:
        if not group or len(group) > 4:
            raise AddressError(f"invalid IPv6 group {group!r} in {text!r}")
        try:
            word = int(group, 16)
        except ValueError:
            raise AddressError(f"invalid IPv6 group {group!r} in {text!r}") from None
        value = (value << 16) | word
    return value


def _format_v6(value: int) -> str:
    groups = [(value >> (16 * (7 - i))) & 0xFFFF for i in range(8)]
    # Find the longest run of zero groups to compress with '::'.
    best_start, best_len = -1, 0
    run_start, run_len = -1, 0
    for i, group in enumerate(groups):
        if group == 0:
            if run_start < 0:
                run_start, run_len = i, 0
            run_len += 1
            if run_len > best_len:
                best_start, best_len = run_start, run_len
        else:
            run_start, run_len = -1, 0
    if best_len < 2:
        return ":".join(f"{g:x}" for g in groups)
    head = ":".join(f"{g:x}" for g in groups[:best_start])
    tail = ":".join(f"{g:x}" for g in groups[best_start + best_len:])
    return f"{head}::{tail}"


@total_ordering
class IPAddress:
    """An immutable IPv4 or IPv6 address backed by an integer.

    Supports integer arithmetic (``addr + 1``), ordering within the same
    family, and conversion to/from text and packed bytes.
    """

    __slots__ = ("_value", "_version")

    def __init__(self, value: Union[int, str, "IPAddress"], version: int = 4):
        if isinstance(value, IPAddress):
            self._value, self._version = value._value, value._version
            return
        if isinstance(value, str):
            if ":" in value:
                self._value, self._version = _parse_v6(value), 6
            else:
                self._value, self._version = _parse_v4(value), 4
            return
        if version not in (4, 6):
            raise AddressError(f"unknown IP version {version}")
        limit = _V4_MAX if version == 4 else _V6_MAX
        if not 0 <= value <= limit:
            raise AddressError(f"address {value} out of range for IPv{version}")
        self._value = int(value)
        self._version = version

    @property
    def value(self) -> int:
        return self._value

    @property
    def version(self) -> int:
        return self._version

    @property
    def bits(self) -> int:
        return _V4_BITS if self._version == 4 else _V6_BITS

    def packed(self) -> bytes:
        return self._value.to_bytes(self.bits // 8, "big")

    @classmethod
    def from_packed(cls, data: bytes) -> "IPAddress":
        if len(data) == 4:
            return cls(int.from_bytes(data, "big"), 4)
        if len(data) == 16:
            return cls(int.from_bytes(data, "big"), 6)
        raise AddressError(f"packed address must be 4 or 16 bytes, got {len(data)}")

    def __int__(self) -> int:
        return self._value

    def __add__(self, offset: int) -> "IPAddress":
        return IPAddress(self._value + offset, self._version)

    def __sub__(self, other: Union[int, "IPAddress"]) -> Union["IPAddress", int]:
        if isinstance(other, IPAddress):
            return self._value - other._value
        return IPAddress(self._value - other, self._version)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IPAddress)
            and self._value == other._value
            and self._version == other._version
        )

    def __lt__(self, other: "IPAddress") -> bool:
        if not isinstance(other, IPAddress):
            return NotImplemented
        return (self._version, self._value) < (other._version, other._value)

    def __hash__(self) -> int:
        return hash((self._version, self._value))

    def __str__(self) -> str:
        return _format_v4(self._value) if self._version == 4 else _format_v6(self._value)

    def __repr__(self) -> str:
        return f"IPAddress({str(self)!r})"


@total_ordering
class Prefix:
    """An immutable IP prefix (network address + mask length).

    The host bits of the supplied address must be zero unless
    ``strict=False``, in which case they are masked off — matching the
    behaviour a router applies when installing a route.
    """

    __slots__ = ("_address", "_length")

    def __init__(
        self,
        address: Union[IPAddress, str, int],
        length: int = None,
        version: int = 4,
        strict: bool = True,
    ):
        if isinstance(address, str) and "/" in address:
            if length is not None:
                raise AddressError("length given twice")
            address, _, length_text = address.partition("/")
            if not length_text.isdigit():
                raise AddressError(f"invalid prefix length {length_text!r}")
            length = int(length_text)
        if isinstance(address, str):
            address = IPAddress(address)
        elif isinstance(address, int):
            address = IPAddress(address, version)
        if length is None:
            length = address.bits
        if not 0 <= length <= address.bits:
            raise AddressError(
                f"prefix length {length} out of range for IPv{address.version}"
            )
        mask = _mask(length, address.bits)
        masked = address.value & mask
        if strict and masked != address.value:
            raise AddressError(f"host bits set in {address}/{length}")
        self._address = IPAddress(masked, address.version)
        self._length = length

    @property
    def address(self) -> IPAddress:
        return self._address

    @property
    def length(self) -> int:
        return self._length

    @property
    def version(self) -> int:
        return self._address.version

    @property
    def bits(self) -> int:
        return self._address.bits

    @property
    def netmask(self) -> IPAddress:
        return IPAddress(_mask(self._length, self.bits), self.version)

    def num_addresses(self) -> int:
        return 1 << (self.bits - self._length)

    def first_address(self) -> IPAddress:
        return self._address

    def last_address(self) -> IPAddress:
        return IPAddress(self._address.value | ~_mask(self._length, self.bits) & _max(self.bits), self.version)

    def contains(self, other: Union["Prefix", IPAddress]) -> bool:
        """True if ``other`` (prefix or address) is within this prefix."""
        if isinstance(other, IPAddress):
            other = Prefix(other, other.bits)
        if other.version != self.version or other._length < self._length:
            return False
        mask = _mask(self._length, self.bits)
        return (other._address.value & mask) == self._address.value

    def __contains__(self, other: Union["Prefix", IPAddress]) -> bool:
        return self.contains(other)

    def overlaps(self, other: "Prefix") -> bool:
        return self.contains(other) or other.contains(self)

    def subnets(self, new_length: int = None) -> Iterator["Prefix"]:
        """Iterate the subnets of this prefix at ``new_length``.

        Defaults to splitting one bit deeper (two halves).
        """
        if new_length is None:
            new_length = self._length + 1
        if new_length < self._length or new_length > self.bits:
            raise AddressError(f"cannot subnet /{self._length} into /{new_length}")
        step = 1 << (self.bits - new_length)
        base = self._address.value
        for i in range(1 << (new_length - self._length)):
            yield Prefix(IPAddress(base + i * step, self.version), new_length)

    def supernet(self, new_length: int = None) -> "Prefix":
        if new_length is None:
            new_length = self._length - 1
        if new_length > self._length or new_length < 0:
            raise AddressError(f"cannot supernet /{self._length} to /{new_length}")
        return Prefix(
            IPAddress(self._address.value & _mask(new_length, self.bits), self.version),
            new_length,
        )

    def key(self) -> Tuple[int, int, int]:
        """A cheap sortable/hashable key ``(version, address, length)``."""
        return (self.version, self._address.value, self._length)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Prefix) and self.key() == other.key()

    def __lt__(self, other: "Prefix") -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return self.key() < other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __str__(self) -> str:
        return f"{self._address}/{self._length}"

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"


def _mask(length: int, bits: int) -> int:
    if length == 0:
        return 0
    return (_max(bits) >> (bits - length)) << (bits - length)


def _max(bits: int) -> int:
    return _V4_MAX if bits == _V4_BITS else _V6_MAX


def parse_address(text: str) -> IPAddress:
    """Parse an IPv4 or IPv6 address from text."""
    return IPAddress(text)


def parse_prefix(text: str, strict: bool = True) -> Prefix:
    """Parse a prefix in ``address/length`` form; bare addresses get a host mask."""
    if "/" not in text:
        address = IPAddress(text)
        return Prefix(address, address.bits)
    return Prefix(text, strict=strict)
