"""In-memory byte channels used as the transport under BGP sessions.

The BGP code is written against a tiny transport interface (``send`` /
``receive`` / ``close``) so the same session logic works over any conduit.
:class:`ChannelPair` provides the default: two connected FIFO endpoints with
optional propagation delay when driven by the discrete-event engine.

Two hooks exist for the fault-injection subsystem (:mod:`repro.faults`):

* ``Endpoint.transit`` — interposes on every ``send``; it receives the
  payload and a ``forward`` continuation, and may drop, mutate, duplicate,
  or defer the delivery (e.g. via the event engine).
* ``Endpoint.close`` — severing a channel notifies both ends, which is how
  sessions observe transport loss.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

__all__ = ["ChannelClosed", "Endpoint", "ChannelPair"]


class ChannelClosed(Exception):
    """Raised when sending on (or draining) a closed channel."""


class _DispatchContext:
    """Run-to-completion dispatch state, scoped to one connected pair.

    A message sent from inside a receive handler is queued and delivered
    only after the current handler returns, exactly like an event loop
    would.  Without this, two BGP speakers answering each other re-enter
    their handlers mid-transition.  The state is per-pair (not module
    global) so one pair's nested sends can never reorder an unrelated
    pair's traffic.
    """

    __slots__ = ("queue", "dispatching")

    def __init__(self) -> None:
        self.queue: Deque[Tuple["Endpoint", bytes]] = deque()
        self.dispatching = False

    def dispatch(self, target: "Endpoint", data: bytes) -> None:
        self.queue.append((target, data))
        if self.dispatching:
            return
        self.dispatching = True
        try:
            while self.queue:
                endpoint, message = self.queue.popleft()
                if not endpoint.closed:
                    endpoint._deliver(message)
        finally:
            self.dispatching = False


class Endpoint:
    """One end of a byte-message channel.

    Messages are delivered whole (the channel is message-oriented, as TCP
    with a framing layer would provide).  An optional ``on_receive`` callback
    makes the endpoint push-driven, which is how the event engine wires
    sessions together.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._peer: Optional["Endpoint"] = None
        self._ctx = _DispatchContext()
        self._queue: Deque[bytes] = deque()
        self.closed = False
        self.on_receive: Optional[Callable[[bytes], None]] = None
        self.on_close: Optional[Callable[[], None]] = None
        # Fault-injection interposer: transit(data, forward) decides when
        # (and whether, and in what shape) forward(payload) runs.
        self.transit: Optional[Callable[[bytes, Callable[[bytes], None]], None]] = None
        self.sent_count = 0
        self.received_count = 0

    def connect(self, peer: "Endpoint") -> None:
        self._peer = peer
        peer._peer = self
        # Both ends share one dispatch context so answers queued from
        # inside a handler preserve FIFO order across the pair.
        peer._ctx = self._ctx

    @property
    def connected(self) -> bool:
        return self._peer is not None and not self.closed

    def send(self, data: bytes) -> None:
        """Deliver ``data`` to the peer endpoint."""
        if self.closed:
            raise ChannelClosed(f"endpoint {self.name!r} is closed")
        if self._peer is None:
            raise ChannelClosed(f"endpoint {self.name!r} is not connected")
        if self._peer.closed:
            raise ChannelClosed(f"peer of {self.name!r} is closed")
        self.sent_count += 1
        peer = self._peer
        ctx = self._ctx

        def forward(payload: bytes) -> None:
            # A deferred delivery may arrive after the channel was severed.
            if not peer.closed:
                ctx.dispatch(peer, payload)

        if self.transit is not None:
            self.transit(data, forward)
        else:
            forward(data)

    def redeliver(self, data: bytes) -> None:
        """Feed ``data`` back into this endpoint through the pair's
        run-to-completion context.

        Used when replaying drained backlog: a handler that answers
        mid-replay must have its reply queued behind the replayed message,
        exactly as if the message had just arrived off the wire."""
        self._ctx.dispatch(self, data)

    def _deliver(self, data: bytes) -> None:
        self.received_count += 1
        if self.on_receive is not None:
            self.on_receive(data)
        else:
            self._queue.append(data)

    def receive(self) -> Optional[bytes]:
        """Pop the next queued message, or ``None`` when empty."""
        if self._queue:
            return self._queue.popleft()
        return None

    def drain(self) -> List[bytes]:
        """Pop and return all queued messages."""
        messages = list(self._queue)
        self._queue.clear()
        return messages

    def pending(self) -> int:
        return len(self._queue)

    def close(self) -> None:
        """Close both directions; notifies the peer's ``on_close`` hook."""
        if self.closed:
            return
        self.closed = True
        if self._peer is not None and not self._peer.closed:
            self._peer.closed = True
            if self._peer.on_close is not None:
                self._peer.on_close()
        if self.on_close is not None:
            self.on_close()


class ChannelPair:
    """A connected pair of endpoints, like ``socketpair()``."""

    def __init__(self, name: str = "") -> None:
        self.a = Endpoint(f"{name}.a")
        self.b = Endpoint(f"{name}.b")
        self.a.connect(self.b)

    @property
    def closed(self) -> bool:
        return self.a.closed or self.b.closed

    def sever(self) -> None:
        """Cut the link (both directions), as a fault would."""
        self.a.close()

    def __iter__(self):
        return iter((self.a, self.b))
