"""In-memory byte channels used as the transport under BGP sessions.

The BGP code is written against a tiny transport interface (``send`` /
``receive`` / ``close``) so the same session logic works over any conduit.
:class:`ChannelPair` provides the default: two connected FIFO endpoints with
optional propagation delay when driven by the discrete-event engine.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

__all__ = ["ChannelClosed", "Endpoint", "ChannelPair"]


class ChannelClosed(Exception):
    """Raised when sending on (or draining) a closed channel."""


# Run-to-completion dispatch: a message sent from inside a receive handler
# is queued and delivered only after the current handler returns, exactly
# like an event loop would.  Without this, two BGP speakers answering each
# other re-enter their handlers mid-transition.
_dispatch_queue: Deque = deque()
_dispatching = False


def _dispatch(target: "Endpoint", data: bytes) -> None:
    global _dispatching
    _dispatch_queue.append((target, data))
    if _dispatching:
        return
    _dispatching = True
    try:
        while _dispatch_queue:
            endpoint, message = _dispatch_queue.popleft()
            if not endpoint.closed:
                endpoint._deliver(message)
    finally:
        _dispatching = False


class Endpoint:
    """One end of a byte-message channel.

    Messages are delivered whole (the channel is message-oriented, as TCP
    with a framing layer would provide).  An optional ``on_receive`` callback
    makes the endpoint push-driven, which is how the event engine wires
    sessions together.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._peer: Optional["Endpoint"] = None
        self._queue: Deque[bytes] = deque()
        self.closed = False
        self.on_receive: Optional[Callable[[bytes], None]] = None
        self.on_close: Optional[Callable[[], None]] = None
        self.sent_count = 0
        self.received_count = 0

    def connect(self, peer: "Endpoint") -> None:
        self._peer = peer
        peer._peer = self

    @property
    def connected(self) -> bool:
        return self._peer is not None and not self.closed

    def send(self, data: bytes) -> None:
        """Deliver ``data`` to the peer endpoint."""
        if self.closed:
            raise ChannelClosed(f"endpoint {self.name!r} is closed")
        if self._peer is None:
            raise ChannelClosed(f"endpoint {self.name!r} is not connected")
        if self._peer.closed:
            raise ChannelClosed(f"peer of {self.name!r} is closed")
        self.sent_count += 1
        _dispatch(self._peer, data)

    def _deliver(self, data: bytes) -> None:
        self.received_count += 1
        if self.on_receive is not None:
            self.on_receive(data)
        else:
            self._queue.append(data)

    def receive(self) -> Optional[bytes]:
        """Pop the next queued message, or ``None`` when empty."""
        if self._queue:
            return self._queue.popleft()
        return None

    def drain(self) -> List[bytes]:
        """Pop and return all queued messages."""
        messages = list(self._queue)
        self._queue.clear()
        return messages

    def pending(self) -> int:
        return len(self._queue)

    def close(self) -> None:
        """Close both directions; notifies the peer's ``on_close`` hook."""
        if self.closed:
            return
        self.closed = True
        if self._peer is not None and not self._peer.closed:
            self._peer.closed = True
            if self._peer.on_close is not None:
                self._peer.on_close()
        if self.on_close is not None:
            self.on_close()


class ChannelPair:
    """A connected pair of endpoints, like ``socketpair()``."""

    def __init__(self, name: str = "") -> None:
        self.a = Endpoint(f"{name}.a")
        self.b = Endpoint(f"{name}.b")
        self.a.connect(self.b)

    def __iter__(self):
        return iter((self.a, self.b))
