"""A minimal IPv4 packet model for the simulated data plane.

Packets carry source/destination addresses, a TTL, an opaque payload, and a
small set of metadata fields used by measurement tooling (probe identifiers,
record-route style path accumulation).  The model is deliberately simple:
enough for traceroute/ping-style probing, tunnel encapsulation, anycast
catchment measurement, and spoofing-control tests — the data-plane
experiments described in the paper.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, List, Optional, Tuple

from .addr import IPAddress

__all__ = ["Packet", "icmp_ttl_exceeded", "icmp_echo_reply", "PacketError"]

_ident = itertools.count(1)

DEFAULT_TTL = 64


class PacketError(Exception):
    """Raised for invalid packet operations (e.g. decapsulating a non-tunnel packet)."""


@dataclass(frozen=True)
class Packet:
    """An immutable simulated IP packet.

    ``trace`` accumulates the ASNs traversed (record-route style) so the
    data-plane simulator can report the forward path a packet actually took;
    real measurements would recover this with traceroute.
    """

    src: IPAddress
    dst: IPAddress
    ttl: int = DEFAULT_TTL
    proto: str = "udp"
    payload: Any = None
    ident: int = field(default_factory=lambda: next(_ident))
    trace: Tuple[int, ...] = ()
    inner: Optional["Packet"] = None
    src_port: Optional[int] = None
    dst_port: Optional[int] = None
    dscp: Optional[int] = None  # set by FlowSpec traffic-marking
    size: int = 64  # on-the-wire bytes, for volumetric accounting

    def __post_init__(self) -> None:
        if self.ttl < 0:
            raise PacketError(f"negative TTL {self.ttl}")
        if self.size < 0:
            raise PacketError(f"negative size {self.size}")

    def decrement_ttl(self) -> "Packet":
        """Return a copy with TTL decremented; PacketError if already zero."""
        if self.ttl == 0:
            raise PacketError("TTL already zero")
        return replace(self, ttl=self.ttl - 1)

    def hop(self, asn: int) -> "Packet":
        """Record traversal of ``asn`` and decrement the TTL."""
        return replace(self, ttl=self.ttl - 1, trace=self.trace + (asn,))

    @property
    def expired(self) -> bool:
        return self.ttl == 0

    def mark(self, dscp: int) -> "Packet":
        """Return a copy remarked with ``dscp`` (FlowSpec traffic-marking)."""
        return replace(self, dscp=dscp)

    def reply(self, payload: Any = None, proto: Optional[str] = None) -> "Packet":
        """Build a response packet with src/dst (and ports) swapped and a
        fresh TTL."""
        return Packet(
            src=self.dst,
            dst=self.src,
            ttl=DEFAULT_TTL,
            proto=proto if proto is not None else self.proto,
            payload=payload,
            src_port=self.dst_port,
            dst_port=self.src_port,
        )

    def encapsulate(self, src: IPAddress, dst: IPAddress, proto: str = "tunnel") -> "Packet":
        """Wrap this packet inside an outer header (tunnel ingress)."""
        return Packet(src=src, dst=dst, proto=proto, inner=self)

    def decapsulate(self) -> "Packet":
        """Unwrap one layer of encapsulation (tunnel egress)."""
        if self.inner is None:
            raise PacketError("packet is not encapsulated")
        return self.inner

    def __str__(self) -> str:
        core = f"{self.src} -> {self.dst} {self.proto} ttl={self.ttl}"
        if self.inner is not None:
            core += f" [{self.inner}]"
        return core


def icmp_ttl_exceeded(original: Packet, reporter: IPAddress) -> Packet:
    """The ICMP time-exceeded a router emits when ``original`` expires at it."""
    return Packet(
        src=reporter,
        dst=original.src,
        proto="icmp-ttl-exceeded",
        payload={"original_ident": original.ident, "trace": original.trace},
    )


def icmp_echo_reply(request: Packet, responder: IPAddress) -> Packet:
    """The echo reply a destination emits for a probe packet."""
    return Packet(
        src=responder,
        dst=request.src,
        proto="icmp-echo-reply",
        payload={"original_ident": request.ident, "trace": request.trace},
    )
