"""OpenVPN-style tunnels between PEERING clients and servers.

The real testbed forwards traffic between clients and servers over OpenVPN.
Here a :class:`Tunnel` is a bidirectional conduit that encapsulates packets
between two tunnel endpoints, tracks counters, and can enforce an MTU and a
rate limit (the paper notes PEERING only supports low traffic volumes).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .addr import IPAddress
from .packet import Packet, PacketError

__all__ = ["TunnelError", "TunnelEndpoint", "Tunnel"]


class TunnelError(Exception):
    """Raised for tunnel misuse: down tunnels, oversize packets, rate caps."""


class TunnelEndpoint:
    """One side of a tunnel; delivers decapsulated packets to ``on_packet``."""

    def __init__(self, address: IPAddress, name: str = "") -> None:
        self.address = address
        self.name = name or str(address)
        self.on_packet: Optional[Callable[[Packet], None]] = None
        self.tx_packets = 0
        self.rx_packets = 0
        self._tunnel: Optional["Tunnel"] = None

    def send(self, packet: Packet) -> None:
        """Encapsulate ``packet`` and push it through the tunnel."""
        if self._tunnel is None:
            raise TunnelError(f"endpoint {self.name} is not attached to a tunnel")
        self._tunnel.transmit(self, packet)

    def _receive(self, packet: Packet) -> None:
        self.rx_packets += 1
        if self.on_packet is not None:
            self.on_packet(packet)


class Tunnel:
    """A point-to-point encapsulating tunnel with optional MTU/rate limits.

    ``rate_limit`` caps the number of packets accepted per simulated-time
    window; callers advance the window with :meth:`tick`.  PEERING servers
    use this to enforce the low-volume policy.
    """

    def __init__(
        self,
        left: TunnelEndpoint,
        right: TunnelEndpoint,
        mtu: Optional[int] = None,
        rate_limit: Optional[int] = None,
    ) -> None:
        self.left = left
        self.right = right
        self.mtu = mtu
        self.rate_limit = rate_limit
        self.up = True
        self.dropped = 0
        self._window_count = 0
        left._tunnel = self
        right._tunnel = self
        self.log: List[Packet] = []

    def other(self, endpoint: TunnelEndpoint) -> TunnelEndpoint:
        if endpoint is self.left:
            return self.right
        if endpoint is self.right:
            return self.left
        raise TunnelError("endpoint does not belong to this tunnel")

    def transmit(self, sender: TunnelEndpoint, packet: Packet) -> None:
        if not self.up:
            raise TunnelError("tunnel is down")
        if self.mtu is not None and _packet_size(packet) > self.mtu:
            self.dropped += 1
            raise TunnelError(f"packet exceeds tunnel MTU {self.mtu}")
        if self.rate_limit is not None:
            if self._window_count >= self.rate_limit:
                self.dropped += 1
                raise TunnelError("tunnel rate limit exceeded")
            self._window_count += 1
        receiver = self.other(sender)
        outer = packet.encapsulate(sender.address, receiver.address)
        sender.tx_packets += 1
        self.log.append(outer)
        try:
            inner = outer.decapsulate()
        except PacketError:  # pragma: no cover - encapsulate always wraps
            raise TunnelError("malformed tunnel frame")
        receiver._receive(inner)

    def tick(self) -> None:
        """Advance the rate-limit window (called once per simulated second)."""
        self._window_count = 0

    def take_down(self) -> None:
        self.up = False

    def bring_up(self) -> None:
        self.up = True


def _packet_size(packet: Packet) -> int:
    """Approximate on-wire size: 20-byte header per layer plus payload length."""
    size = 20
    payload = packet.payload
    if isinstance(payload, (bytes, str)):
        size += len(payload)
    elif payload is not None:
        size += 64
    if packet.inner is not None:
        size += _packet_size(packet.inner)
    return size
