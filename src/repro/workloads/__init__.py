"""Workload generators: the Alexa-like web ecosystem and traffic models."""

from .alexa import Resource, Site, WebConfig, WebEcosystem, build_web_ecosystem
from .traffic import (
    ClientPopulation,
    ProbeTrain,
    attack_flows,
    client_population,
    gravity_matrix,
    zipf_attack_sources,
    zipf_clients,
)

__all__ = [
    "Resource",
    "Site",
    "WebConfig",
    "WebEcosystem",
    "build_web_ecosystem",
    "ClientPopulation",
    "ProbeTrain",
    "client_population",
    "gravity_matrix",
    "zipf_attack_sources",
    "zipf_clients",
    "attack_flows",
]
