"""Workload generators: the Alexa-like web ecosystem and traffic models."""

from .alexa import Resource, Site, WebConfig, WebEcosystem, build_web_ecosystem
from .traffic import ProbeTrain, client_population, gravity_matrix

__all__ = [
    "Resource",
    "Site",
    "WebConfig",
    "WebEcosystem",
    "build_web_ecosystem",
    "ProbeTrain",
    "client_population",
    "gravity_matrix",
]
