"""Synthetic web ecosystem for the §4.1 destination-coverage experiment.

The paper fetched the Alexa Top 500, resolved every embedded resource
(49,776 resources from 4,182 FQDNs → 2,757 distinct IPs) and checked
which IPs the AMS-IX peer routes covered (1,055 of 2,757, and 157 of the
500 sites themselves).  The punchline: *content is concentrated in a few
CDNs/clouds that peer openly*, so peer routes over-cover popular content
relative to random addresses.

This generator reproduces that structure on the synthetic Internet:

* ``site_count`` popular sites, each hosted on some AS (Zipf-weighted
  toward content ASes, but with a tail on access/enterprise space — most
  origin sites are *not* on CDNs);
* each site's page pulls resources from third-party FQDNs (analytics,
  ads, CDN assets) whose hosting is heavily concentrated on CDN ASes;
* FQDNs resolve to IPs inside their hosting AS's address space.

The DNS side is modeled by :class:`Resolver`, which assigns each AS a
synthetic address block and each FQDN an address in its hoster's block.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..inet.topology import ASGraph, ASKind
from ..net.addr import IPAddress, Prefix

__all__ = ["WebConfig", "Site", "Resource", "WebEcosystem", "build_web_ecosystem"]


@dataclass(frozen=True)
class WebConfig:
    site_count: int = 500
    mean_resources_per_page: int = 100
    third_party_fqdn_pool: int = 4200
    cdn_concentration: float = 0.62  # fraction of third-party FQDNs on CDNs
    seed: int = 4182


@dataclass(frozen=True)
class Resource:
    fqdn: str
    ip: IPAddress
    asn: int


@dataclass(frozen=True)
class Site:
    rank: int
    domain: str
    ip: IPAddress
    asn: int
    resources: Tuple[Resource, ...]


class Resolver:
    """Synthetic DNS: maps FQDNs to IPs inside the hosting AS's block.

    Each AS gets a /16 out of 60.0.0.0/6-ish space, deterministic by ASN,
    so IP→AS attribution is trivially invertible for the analysis.
    """

    def __init__(self) -> None:
        self._assigned: Dict[str, IPAddress] = {}
        self._per_as_counter: Dict[int, int] = {}

    def block_for(self, asn: int) -> Prefix:
        base = IPAddress("60.0.0.0").value + ((asn % 65536) << 16)
        return Prefix(IPAddress(base), 16)

    def resolve(self, fqdn: str, asn: int, names_per_ip: int = 1) -> IPAddress:
        """Stable resolution.  ``names_per_ip`` > 1 packs several FQDNs
        onto one frontend address, the way CDN edges serve many names."""
        if fqdn in self._assigned:
            return self._assigned[fqdn]
        count = self._per_as_counter.get(asn, 0)
        host = 1 + count // max(1, names_per_ip)
        self._per_as_counter[asn] = count + 1
        address = self.block_for(asn).address + host
        self._assigned[fqdn] = address
        return address

    def asn_of(self, ip: IPAddress) -> int:
        base = IPAddress("60.0.0.0").value
        return ((ip.value - base) >> 16) & 0xFFFF


@dataclass
class WebEcosystem:
    """The generated web: sites, resources, and the resolution map."""

    sites: List[Site]
    resolver: Resolver
    graph: ASGraph

    def all_resources(self) -> List[Resource]:
        return [resource for site in self.sites for resource in site.resources]

    def distinct_fqdns(self) -> Set[str]:
        return {resource.fqdn for site in self.sites for resource in site.resources}

    def distinct_ips(self) -> Set[IPAddress]:
        return {resource.ip for site in self.sites for resource in site.resources}

    def coverage(self, reachable_asns: Set[int]) -> Dict[str, int]:
        """The §4.1 coverage numbers against a set of peer-reachable ASes.

        Returns counts shaped like the paper's: sites with peer routes,
        total resources, distinct FQDNs, distinct IPs, covered IPs.
        """
        sites_covered = sum(1 for site in self.sites if site.asn in reachable_asns)
        ips = self.distinct_ips()
        covered_ips = {
            ip
            for site in self.sites
            for resource in site.resources
            if resource.asn in reachable_asns
            for ip in [resource.ip]
        }
        return {
            "sites": len(self.sites),
            "sites_covered": sites_covered,
            "resources": sum(len(site.resources) for site in self.sites),
            "fqdns": len(self.distinct_fqdns()),
            "ips": len(ips),
            "ips_covered": len(covered_ips),
        }


def _pick_weighted(rng: random.Random, items: Sequence[int], weights: Sequence[float]) -> int:
    return rng.choices(items, weights=weights)[0]


def build_web_ecosystem(graph: ASGraph, config: WebConfig = WebConfig()) -> WebEcosystem:
    """Generate the synthetic Alexa-like web over ``graph``."""
    rng = random.Random(config.seed)
    resolver = Resolver()

    content_asns = [n.asn for n in graph.nodes() if n.kind is ASKind.CONTENT]
    edge_nodes = [
        n for n in graph.nodes() if n.kind in (ASKind.ACCESS, ASKind.ENTERPRISE)
    ]
    edge_asns = [n.asn for n in edge_nodes]
    # Self-hosting concentrates in large networks: weight edge hosting by
    # prefix mass, so most non-CDN sites live in big (mostly transit-only)
    # incumbents — which is why peer routes cover only ~1/3 of top sites.
    edge_weights = [max(1, n.prefix_count) for n in edge_nodes]
    transit_asns = [n.asn for n in graph.nodes() if n.kind is ASKind.TRANSIT]
    if not content_asns or not edge_asns:
        raise ValueError("graph lacks content or edge ASes for a web ecosystem")

    # Third-party FQDN pool: concentrated on CDNs, Zipf across them.
    cdn_weights = [1.0 / (i + 1) ** 0.8 for i in range(len(content_asns))]
    fqdn_hosts: List[int] = []
    for i in range(config.third_party_fqdn_pool):
        if rng.random() < config.cdn_concentration:
            fqdn_hosts.append(_pick_weighted(rng, content_asns, cdn_weights))
        else:
            if transit_asns and rng.random() >= 0.8:
                fqdn_hosts.append(rng.choice(transit_asns))
            else:
                fqdn_hosts.append(rng.choices(edge_asns, weights=edge_weights)[0])
    fqdn_names = [f"cdn{i}.assets.example" for i in range(config.third_party_fqdn_pool)]

    # Popularity of third-party FQDNs is itself Zipf (everyone embeds the
    # same analytics/CDN domains).
    fqdn_popularity = [1.0 / (i + 1) for i in range(config.third_party_fqdn_pool)]

    sites: List[Site] = []
    for rank in range(1, config.site_count + 1):
        # Top sites skew toward CDN/content hosting; the tail is self-hosted.
        if rng.random() < 0.35:
            site_asn = _pick_weighted(rng, content_asns, cdn_weights)
        else:
            site_asn = rng.choices(edge_asns, weights=edge_weights)[0]
        domain = f"site{rank}.example"
        site_ip = resolver.resolve(domain, site_asn)

        n_resources = max(5, int(rng.gauss(config.mean_resources_per_page, 30)))
        chosen = rng.choices(
            range(config.third_party_fqdn_pool), weights=fqdn_popularity, k=n_resources
        )
        resources = []
        content_set = set(content_asns)
        for index in chosen:
            fqdn = fqdn_names[index]
            asn = fqdn_hosts[index]
            packing = 6 if asn in content_set else 1
            resources.append(
                Resource(
                    fqdn=fqdn,
                    ip=resolver.resolve(fqdn, asn, names_per_ip=packing),
                    asn=asn,
                )
            )
        sites.append(
            Site(rank=rank, domain=domain, ip=site_ip, asn=site_asn, resources=tuple(resources))
        )
    return WebEcosystem(sites=sites, resolver=resolver, graph=graph)
