"""Traffic workload generators for data-plane experiments.

Provides the flows examples and benchmarks push through the testbed:
probe trains toward a destination set, anycast client populations, and a
simple gravity-model traffic matrix over the AS graph (mass = prefix
count, the usual proxy).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..inet.topology import ASGraph, ASKind
from ..net.addr import IPAddress, Prefix
from ..net.packet import Packet

__all__ = [
    "ProbeTrain",
    "ClientPopulation",
    "client_population",
    "gravity_matrix",
    "zipf_attack_sources",
    "zipf_clients",
    "attack_flows",
]


@dataclass
class ProbeTrain:
    """A sequence of probe packets from one source toward many targets."""

    src: IPAddress
    targets: List[IPAddress]
    proto: str = "icmp-echo"

    def packets(self) -> Iterator[Packet]:
        for target in self.targets:
            yield Packet(src=self.src, dst=target, proto=self.proto)


def client_population(
    graph: ASGraph,
    count: int,
    seed: int = 0,
    kinds: Sequence[ASKind] = (ASKind.ACCESS, ASKind.ENTERPRISE),
) -> List[int]:
    """Sample ``count`` client ASes, weighted by their prefix mass (a
    proxy for user population) — the vantage set for anycast-catchment
    and reachability studies."""
    rng = random.Random(seed)
    candidates = [node for node in graph.nodes() if node.kind in kinds]
    if not candidates:
        raise ValueError("no candidate client ASes")
    weights = [node.prefix_count for node in candidates]
    chosen = set()
    result: List[int] = []
    attempts = 0
    while len(result) < min(count, len(candidates)) and attempts < 50 * count:
        node = rng.choices(candidates, weights=weights)[0]
        attempts += 1
        if node.asn in chosen:
            continue
        chosen.add(node.asn)
        result.append(node.asn)
    return result


@dataclass(frozen=True)
class ClientPopulation:
    """A volume-weighted anycast client population: ``(asn, clients)``
    pairs, heaviest first.

    The weights are *client counts* (simulated end users behind each
    vantage AS), so a population of millions of clients collapses to one
    entry per AS — which is what lets catchment mapping scale: assignment
    is per-AS, volume accounting is per-entry.  Construct directly for
    hand-built populations (entries may reference ASNs absent from a
    topology; catchment mapping reports them as unserved) or sample one
    with :func:`zipf_clients`."""

    weights: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        for asn, clients in self.weights:
            if clients < 0:
                raise ValueError(f"negative client count for AS{asn}")

    @property
    def total_clients(self) -> int:
        return sum(clients for _asn, clients in self.weights)

    @property
    def n_ases(self) -> int:
        return len(self.weights)

    def asns(self) -> Tuple[int, ...]:
        return tuple(asn for asn, _clients in self.weights)

    def items(self) -> Tuple[Tuple[int, int], ...]:
        return self.weights

    def restrict(self, graph: ASGraph) -> "ClientPopulation":
        """Drop entries whose ASN is absent from ``graph``."""
        return ClientPopulation(
            tuple((a, c) for a, c in self.weights if a in graph)
        )


def zipf_clients(
    graph: ASGraph,
    ases: int,
    clients: int,
    seed: int = 0,
    exponent: float = 1.1,
    kinds: Sequence[ASKind] = (ASKind.ACCESS, ASKind.ENTERPRISE),
) -> ClientPopulation:
    """Sample an anycast client population: ``ases`` vantage ASes picked
    by prefix mass (users live where prefixes do), per-AS client volumes
    Zipf over rank — a few heavy eyeball networks, a long tail —
    normalized so the population totals exactly ``clients``.

    Deterministic under ``seed``.  ``ases`` is capped at the number of
    candidate ASes of the requested kinds; ``ases == 0`` yields the empty
    population.  Raises if ``clients`` cannot give every sampled AS at
    least one client.

    Unlike :func:`client_population` (one weighted draw per attempt —
    fine for hundreds of vantages), sampling here is batched over
    precomputed cumulative weights, so population-scale vantage sets
    (tens of thousands of ASes) sample in well under a second."""
    if ases < 0:
        raise ValueError("ases must be >= 0")
    if ases == 0:
        return ClientPopulation(())
    sampled = _sample_by_mass(graph, ases, seed, kinds)
    if not sampled:
        raise ValueError("no candidate client ASes")
    if clients < len(sampled):
        raise ValueError(
            f"need clients >= {len(sampled)} to cover every sampled AS"
        )
    shares = [1.0 / (rank + 1) ** exponent for rank in range(len(sampled))]
    total_share = sum(shares)
    volumes = [max(1, round(clients * s / total_share)) for s in shares]
    # Rounding drift lands on the heaviest AS, keeping the total exact.
    volumes[0] += clients - sum(volumes)
    return ClientPopulation(tuple(zip(sampled, volumes)))


def _sample_by_mass(
    graph: ASGraph,
    count: int,
    seed: int,
    kinds: Sequence[ASKind],
) -> List[int]:
    """Distinct ASes weighted by prefix mass, in draw order (so Zipf
    rank follows sampling luck, heaviest-mass ASes likeliest first).
    Batched rejection sampling over cumulative weights; asking for every
    candidate (or more) short-circuits to mass order."""
    candidates = [node for node in graph.nodes() if node.kind in kinds]
    if not candidates:
        raise ValueError("no candidate client ASes")
    if count >= len(candidates):
        ordered = sorted(candidates, key=lambda n: (-n.prefix_count, n.asn))
        return [node.asn for node in ordered]
    rng = random.Random(seed)
    cum: List[int] = []
    total = 0
    for node in candidates:
        total += max(1, node.prefix_count)
        cum.append(total)
    chosen = set()
    sampled: List[int] = []
    attempts = 0
    limit = 50 * count
    while len(sampled) < count and attempts < limit:
        batch = rng.choices(
            candidates, cum_weights=cum, k=min(4096, limit - attempts)
        )
        attempts += len(batch)
        for node in batch:
            if node.asn in chosen:
                continue
            chosen.add(node.asn)
            sampled.append(node.asn)
            if len(sampled) == count:
                break
    return sampled


def zipf_attack_sources(
    graph: ASGraph,
    count: int,
    total_packets: int,
    seed: int = 0,
    exponent: float = 1.1,
    exclude: Sequence[int] = (),
) -> List[Tuple[int, int]]:
    """Sample a DDoS source population: ``count`` ASes picked by prefix
    mass (botnets live where users do) with per-source volumes Zipf over
    rank — a few heavy hitters, a long tail — normalized to
    ``total_packets``.  Deterministic under ``seed``; returns
    ``[(asn, n_packets), ...]`` heaviest first, every source >= 1 packet.
    """
    if count < 1 or total_packets < count:
        raise ValueError("need count >= 1 and total_packets >= count")
    rng = random.Random(seed)
    banned = set(exclude)
    candidates = [node for node in graph.nodes() if node.asn not in banned]
    if len(candidates) < count:
        raise ValueError(f"only {len(candidates)} candidate source ASes")
    weights = [max(1, node.prefix_count) for node in candidates]
    chosen: List[int] = []
    seen = set()
    while len(chosen) < count:
        node = rng.choices(candidates, weights=weights)[0]
        if node.asn in seen:
            continue
        seen.add(node.asn)
        chosen.append(node.asn)
    shares = [1.0 / (rank + 1) ** exponent for rank in range(count)]
    total_share = sum(shares)
    volumes = [
        max(1, round(total_packets * share / total_share)) for share in shares
    ]
    # Rounding drift lands on the heaviest source, keeping the total exact.
    volumes[0] += total_packets - sum(volumes)
    return list(zip(chosen, volumes))


def attack_flows(
    sources: Sequence[Tuple[int, int]],
    target: IPAddress,
    proto: str = "udp",
    dst_port: Optional[int] = None,
    ttl: int = 64,
) -> Iterator[Tuple[int, Packet]]:
    """Expand ``[(source_asn, n_packets)]`` into the ``(ingress, packet)``
    stream :meth:`repro.faults.plan.FaultPlan.flood_traffic` drives.

    Source addresses are synthesized per source AS (one /32 per AS, so
    BCP 38 at the ingress would pass them); the flow 5-tuple is fixed per
    source, which is what a FlowSpec match component keys on."""
    for source_asn, n_packets in sources:
        src = IPAddress((10 << 24) | (source_asn & 0xFFFFFF), 4)
        for _ in range(n_packets):
            yield source_asn, Packet(
                src=src, dst=target, proto=proto, dst_port=dst_port, ttl=ttl
            )


def gravity_matrix(
    graph: ASGraph,
    sources: Sequence[int],
    destinations: Sequence[int],
    total_flows: int = 1000,
    seed: int = 0,
) -> Dict[Tuple[int, int], int]:
    """Gravity-model flow counts between AS pairs: flow(s, d) proportional
    to mass(s) * mass(d), normalized to ``total_flows``."""
    mass = {asn: max(1, graph.get(asn).prefix_count) for asn in set(sources) | set(destinations)}
    raw: Dict[Tuple[int, int], float] = {}
    for s in sources:
        for d in destinations:
            if s != d:
                raw[(s, d)] = mass[s] * mass[d]
    total_raw = sum(raw.values()) or 1.0
    matrix = {
        pair: max(1, round(total_flows * weight / total_raw))
        for pair, weight in raw.items()
    }
    return matrix
