"""Traffic workload generators for data-plane experiments.

Provides the flows examples and benchmarks push through the testbed:
probe trains toward a destination set, anycast client populations, and a
simple gravity-model traffic matrix over the AS graph (mass = prefix
count, the usual proxy).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..inet.topology import ASGraph, ASKind
from ..net.addr import IPAddress, Prefix
from ..net.packet import Packet

__all__ = ["ProbeTrain", "client_population", "gravity_matrix"]


@dataclass
class ProbeTrain:
    """A sequence of probe packets from one source toward many targets."""

    src: IPAddress
    targets: List[IPAddress]
    proto: str = "icmp-echo"

    def packets(self) -> Iterator[Packet]:
        for target in self.targets:
            yield Packet(src=self.src, dst=target, proto=self.proto)


def client_population(
    graph: ASGraph,
    count: int,
    seed: int = 0,
    kinds: Sequence[ASKind] = (ASKind.ACCESS, ASKind.ENTERPRISE),
) -> List[int]:
    """Sample ``count`` client ASes, weighted by their prefix mass (a
    proxy for user population) — the vantage set for anycast-catchment
    and reachability studies."""
    rng = random.Random(seed)
    candidates = [node for node in graph.nodes() if node.kind in kinds]
    if not candidates:
        raise ValueError("no candidate client ASes")
    weights = [node.prefix_count for node in candidates]
    chosen = set()
    result: List[int] = []
    attempts = 0
    while len(result) < min(count, len(candidates)) and attempts < 50 * count:
        node = rng.choices(candidates, weights=weights)[0]
        attempts += 1
        if node.asn in chosen:
            continue
        chosen.add(node.asn)
        result.append(node.asn)
    return result


def gravity_matrix(
    graph: ASGraph,
    sources: Sequence[int],
    destinations: Sequence[int],
    total_flows: int = 1000,
    seed: int = 0,
) -> Dict[Tuple[int, int], int]:
    """Gravity-model flow counts between AS pairs: flow(s, d) proportional
    to mass(s) * mass(d), normalized to ``total_flows``."""
    mass = {asn: max(1, graph.get(asn).prefix_count) for asn in set(sources) | set(destinations)}
    raw: Dict[Tuple[int, int], float] = {}
    for s in sources:
        for d in destinations:
            if s != d:
                raw[(s, d)] = mass[s] * mass[d]
    total_raw = sum(raw.values()) or 1.0
    matrix = {
        pair: max(1, round(total_flows * weight / total_raw))
        for pair, weight in raw.items()
    }
    return matrix
